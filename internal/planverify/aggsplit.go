package planverify

import (
	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
)

// checkAggSplit verifies the partial/final aggregation pairing over the
// whole plan tree — the paper's §4 local-global transformation restated
// as structural invariants, independent of the enumerator's splitAggs:
//
//   - A finalizing GroupBy must sit over one or more data movements
//     whose base is a partial GroupBy (never over already-complete
//     input, which would re-aggregate finished groups).
//   - The pair must agree on grouping keys, the finalizer must read
//     exactly its partner's state columns, and each finalizing function
//     must be the correct merge of its partial function (SUM and COUNT
//     states merge by SUM, MIN/MAX by themselves; DISTINCT aggregates
//     are not decomposable and must never appear in a split).
//   - Every partial GroupBy must reach exactly one finalizing GroupBy,
//     and only through data movements — any other consumer observes
//     unmerged per-node states.
func checkAggSplit(p *core.Plan) []Violation {
	var out []Violation

	// One pass builds the upward (consumer) edges; shared subplans alias
	// the same *Option, so edges are deduplicated per pointer pair.
	parents := map[*core.Option]map[*core.Option]bool{}
	var partials []*core.Option
	seen := map[*core.Option]bool{}
	var walk func(o *core.Option)
	walk = func(o *core.Option) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		if gb, ok := o.Op.(*algebra.GroupBy); ok {
			switch gb.Phase {
			case algebra.AggPartial:
				partials = append(partials, o)
			case algebra.AggFinal:
				out = append(out, checkAggFinal(o, gb)...)
			}
		}
		for _, in := range o.Inputs {
			if parents[in] == nil {
				parents[in] = map[*core.Option]bool{}
			}
			parents[in][o] = true
			walk(in)
		}
	}
	walk(p.Root)

	for _, partial := range partials {
		out = append(out, checkAggPartialReach(partial, parents)...)
	}
	return out
}

// checkAggFinal descends from a finalizing aggregation through the data
// movements below it and verifies the base is a matching partial.
func checkAggFinal(o *core.Option, final *algebra.GroupBy) []Violation {
	if len(o.Inputs) != 1 {
		return nil // arity violation already reported by checkOption
	}
	base, moves := o.Inputs[0], 0
	for base.Move != nil && len(base.Inputs) == 1 {
		base = base.Inputs[0]
		moves++
	}
	partial, ok := base.Op.(*algebra.GroupBy)
	if !ok || partial.Phase != algebra.AggPartial {
		return []Violation{violation(CodeAggFinalInput,
			"finalizing aggregation over %s, not a partial aggregation", describe(base))}
	}
	if moves == 0 {
		return []Violation{violation(CodeAggFinalInput,
			"finalizing aggregation directly over its partial, with no data movement between")}
	}
	return checkAggPair(final, partial)
}

// checkAggPair verifies one final/partial pair agrees on keys, state
// columns and merge functions.
func checkAggPair(final, partial *algebra.GroupBy) []Violation {
	var out []Violation
	if !sameKeys(final.Keys, partial.Keys) {
		out = append(out, violation(CodeAggSplitMismatch,
			"final keys %v disagree with partial keys %v", final.Keys, partial.Keys))
	}
	if len(final.Aggs) != len(partial.Aggs) {
		return append(out, violation(CodeAggSplitMismatch,
			"final carries %d aggregates, partial %d", len(final.Aggs), len(partial.Aggs)))
	}
	for i := range final.Aggs {
		f, p := final.Aggs[i], partial.Aggs[i]
		if f.Distinct || p.Distinct {
			out = append(out, violation(CodeAggSplitMismatch,
				"DISTINCT aggregate %s is not decomposable but was split", p.Name))
			continue
		}
		ref, ok := f.Arg.(*algebra.ColRef)
		if !ok || ref.ID != p.ID {
			out = append(out, violation(CodeAggSplitMismatch,
				"finalizer %s does not read its partner's state column c%d", f.Name, p.ID))
			continue
		}
		want, decomposable := mergeFunc(p.Func)
		if !decomposable || f.Func != want {
			out = append(out, violation(CodeAggSplitMismatch,
				"finalizer %s merges %v state with %v", f.Name, p.Func, f.Func))
		}
	}
	return out
}

// mergeFunc is the finalizing function for one partial state: SUM and
// COUNT states both merge by summation, MIN/MAX by themselves. Any
// other partial function has no sound merge.
func mergeFunc(p algebra.AggFunc) (algebra.AggFunc, bool) {
	switch p {
	case algebra.AggSum, algebra.AggCount:
		return algebra.AggSum, true
	case algebra.AggMin:
		return algebra.AggMin, true
	case algebra.AggMax:
		return algebra.AggMax, true
	default:
		return p, false
	}
}

// checkAggPartialReach climbs from a partial aggregation through its
// consumers: movements pass states along unchanged, a finalizing
// GroupBy terminates the climb, anything else observes raw states.
func checkAggPartialReach(partial *core.Option, parents map[*core.Option]map[*core.Option]bool) []Violation {
	var out []Violation
	finals := map[*core.Option]bool{}
	visited := map[*core.Option]bool{}
	var climb func(o *core.Option)
	climb = func(o *core.Option) {
		for c := range parents[o] {
			if visited[c] {
				continue
			}
			visited[c] = true
			switch {
			case c.Move != nil:
				climb(c)
			case isFinalGroupBy(c):
				finals[c] = true
			default:
				out = append(out, violation(CodeAggPartialOrphan,
					"partial aggregation consumed by %s, which cannot merge its states", describe(c)))
			}
		}
	}
	climb(partial)
	if len(finals) != 1 {
		out = append(out, violation(CodeAggPartialOrphan,
			"partial aggregation reaches %d finalizing aggregations, want exactly 1", len(finals)))
	}
	return out
}

func isFinalGroupBy(o *core.Option) bool {
	gb, ok := o.Op.(*algebra.GroupBy)
	return ok && gb.Phase == algebra.AggFinal
}

// sameKeys compares grouping-key lists positionally: the enumerator
// builds the final over the partial's own key order, so order matters.
func sameKeys(a, b []algebra.ColumnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

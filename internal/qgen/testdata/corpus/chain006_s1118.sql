SELECT MIN(k1) AS mn, MAX(v0) AS mx, COUNT(*) AS cnt
FROM ch00, ch01, ch02, ch03, ch04, ch05
WHERE k0 = f1
  AND k1 = f2
  AND k2 = f3
  AND k3 = f4
  AND k4 = f5
  AND v1 <= 791
  AND v2 <= 334
  AND v4 <= 623

package server

import (
	"context"
	"sync/atomic"
	"time"
)

// admission is the control node's concurrency gate. PDW runs a fixed-size
// pool of concurrent DSQL executions; everything beyond it waits in a
// bounded queue and everything beyond *that* is shed immediately with a
// typed rejection, so an overload burst degrades into fast failures
// instead of a pileup of stuck sessions.
//
// It is a two-stage channel semaphore: tickets bounds running+waiting
// (queue admission), slots bounds running (execution admission). Both are
// buffered channels used as counting semaphores, so acquisition composes
// with context cancellation and the queue timeout in one select.
type admission struct {
	slots   chan struct{} // cap = max concurrent executions
	tickets chan struct{} // cap = concurrent + max queued
	timeout time.Duration // max wait for a slot; 0 waits indefinitely

	admitted        atomic.Uint64
	rejectedFull    atomic.Uint64
	rejectedTimeout atomic.Uint64
	abandoned       atomic.Uint64 // waits ended by caller cancellation
}

func newAdmission(concurrent, queue int, timeout time.Duration) *admission {
	return &admission{
		slots:   make(chan struct{}, concurrent),
		tickets: make(chan struct{}, concurrent+queue),
		timeout: timeout,
	}
}

// acquire claims an execution slot, waiting in the admission queue up to
// the configured timeout. It returns a release function exactly when err
// is nil. Typed failures: CodeQueueFull when the wait queue is already at
// capacity, CodeQueueTimeout when the wait expires; a context
// cancellation during the wait returns ctx.Err() for the caller to map
// onto its own cancel/shutdown code.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.tickets <- struct{}{}:
	default:
		a.rejectedFull.Add(1)
		return nil, errf(CodeQueueFull, "admission queue at capacity (%d running, %d waiting)",
			cap(a.slots), cap(a.tickets)-cap(a.slots))
	}
	var expire <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return func() { <-a.slots; <-a.tickets }, nil
	case <-expire:
		<-a.tickets
		a.rejectedTimeout.Add(1)
		return nil, errf(CodeQueueTimeout, "no execution slot freed within %v", a.timeout)
	case <-ctx.Done():
		<-a.tickets
		a.abandoned.Add(1)
		return nil, ctx.Err()
	}
}

// AdmissionStats is a point-in-time snapshot of the gate's counters.
type AdmissionStats struct {
	// Admitted counts queries that got an execution slot.
	Admitted uint64
	// RejectedFull counts queries shed because the queue was at capacity.
	RejectedFull uint64
	// RejectedTimeout counts queries whose queue wait expired.
	RejectedTimeout uint64
	// Abandoned counts queue waits ended by cancellation or shutdown.
	Abandoned uint64
	// Running is the current number of occupied execution slots.
	Running int
	// Waiting is the current admission-queue depth.
	Waiting int
}

func (a *admission) stats() AdmissionStats {
	running := len(a.slots)
	inGate := len(a.tickets)
	waiting := inGate - running
	if waiting < 0 {
		// The two channel reads are not atomic together; clamp the skew.
		waiting = 0
	}
	return AdmissionStats{
		Admitted:        a.admitted.Load(),
		RejectedFull:    a.rejectedFull.Load(),
		RejectedTimeout: a.rejectedTimeout.Load(),
		Abandoned:       a.abandoned.Load(),
		Running:         running,
		Waiting:         waiting,
	}
}

// Package difftest is the differential harness certifying that the
// parallel enumeration and execution paths are observationally identical
// to the serial references: for every query in the corpus the cheapest
// plan cost, the generated DSQL step sequence, and the executed result
// relation must match byte-for-byte between Parallelism=1 and any higher
// setting. The corpus is the full adapted TPC-H suite plus a seeded
// stream of random schema-valid queries (join chains along foreign keys,
// filters, DISTINCT, aggregation).
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pdwqo"
)

// Case is one corpus entry.
type Case struct {
	Name string
	SQL  string
}

// TPCHCases returns the full adapted TPC-H suite in name order.
func TPCHCases() []Case {
	var out []Case
	for _, name := range pdwqo.TPCHQueryNames() {
		sql, _ := pdwqo.TPCHQuery(name)
		out = append(out, Case{Name: name, SQL: sql})
	}
	return out
}

// FuzzCases generates n random schema-valid queries, deterministic under
// seed. The shapes mirror the package-level fuzz tests: a connected table
// set walked along TPC-H foreign keys, random numeric/date/string
// filters, and a projection, DISTINCT, or GROUP BY head.
func FuzzCases(n int, seed int64) []Case {
	r := rand.New(rand.NewSource(seed))
	out := make([]Case, n)
	for i := range out {
		out[i] = Case{Name: fmt.Sprintf("fuzz-%03d", i), SQL: randomSQL(r)}
	}
	return out
}

// Diff optimizes and executes one case through the serial path
// (Parallelism=1) and the parallel path (Parallelism=par) and returns a
// descriptive error on the first divergence. Equality is exact — same
// cost bits, same DSQL text, same rows in the same order — because both
// paths are required to be fully deterministic.
func Diff(db *pdwqo.DB, c Case, par int) error {
	serial, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: 1})
	if err != nil {
		return fmt.Errorf("%s: serial optimize: %w", c.Name, err)
	}
	parallel, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par})
	if err != nil {
		return fmt.Errorf("%s: parallel optimize: %w", c.Name, err)
	}
	if s, p := serial.Cost(), parallel.Cost(); s != p {
		return fmt.Errorf("%s: plan cost diverged: serial %v, parallel(%d) %v", c.Name, s, par, p)
	}
	sdsql, pdsql := serial.DSQL.String(), parallel.DSQL.String()
	if sdsql != pdsql {
		return fmt.Errorf("%s: DSQL steps diverged:\n--- serial ---\n%s--- parallel(%d) ---\n%s%s",
			c.Name, sdsql, par, pdsql, firstDiffLine(sdsql, pdsql))
	}

	db.SetParallelism(1)
	sres, err := db.ExecutePlan(serial)
	if err != nil {
		return fmt.Errorf("%s: serial execute: %w", c.Name, err)
	}
	db.SetParallelism(par)
	pres, err := db.ExecutePlan(parallel)
	if err != nil {
		return fmt.Errorf("%s: parallel execute: %w", c.Name, err)
	}
	return diffResults(c.Name, par, sres, pres)
}

// Verify compiles one case with the static plan verifier enabled under
// each option variant and returns the first verification failure. The
// verifier cross-checks the optimized tree, the DSQL step sequence and
// the serialized memo without executing, so a failure here is a planner
// soundness bug, not a data bug.
func Verify(db *pdwqo.DB, c Case, variants ...pdwqo.Options) error {
	for _, opts := range variants {
		opts.Verify = true
		if _, err := db.Optimize(c.SQL, opts); err != nil {
			return fmt.Errorf("%s (mode=%v budget=%d seeded=%v): %w",
				c.Name, opts.Mode, opts.Budget, opts.SeedCollocated, err)
		}
	}
	return nil
}

// diffResults asserts exact row-for-row equality. The engine's merges are
// node- and source-ordered under any worker schedule, so even the float
// low bits must agree; comparing sorted canonical rows as a fallback
// would mask an ordering regression.
func diffResults(name string, par int, s, p *pdwqo.Result) error {
	if sc, pc := strings.Join(s.Columns, "|"), strings.Join(p.Columns, "|"); sc != pc {
		return fmt.Errorf("%s: result columns diverged: serial %q, parallel(%d) %q", name, sc, par, pc)
	}
	if len(s.Rows) != len(p.Rows) {
		return fmt.Errorf("%s: row count diverged: serial %d, parallel(%d) %d", name, len(s.Rows), par, len(p.Rows))
	}
	for i := range s.Rows {
		a, b := canonRow(s.Rows[i]), canonRow(p.Rows[i])
		if a != b {
			return fmt.Errorf("%s: row %d diverged:\n  serial:      %s\n  parallel(%d): %s", name, i, a, par, b)
		}
	}
	return nil
}

func canonRow(row pdwqo.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// firstDiffLine points at the first differing DSQL line, to keep large
// plan dumps readable.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first divergence at line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("plans diverge in length: %d vs %d lines", len(al), len(bl))
}

// --- seeded query generator over the TPC-H schema ---

type fkEdge struct {
	from, fromCol string
	to, toCol     string
}

var fkEdges = []fkEdge{
	{"orders", "o_custkey", "customer", "c_custkey"},
	{"lineitem", "l_orderkey", "orders", "o_orderkey"},
	{"lineitem", "l_partkey", "part", "p_partkey"},
	{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
	{"partsupp", "ps_partkey", "part", "p_partkey"},
	{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
	{"customer", "c_nationkey", "nation", "n_nationkey"},
	{"supplier", "s_nationkey", "nation", "n_nationkey"},
	{"nation", "n_regionkey", "region", "r_regionkey"},
}

var (
	numericCols = map[string][]string{
		"customer": {"c_acctbal"},
		"orders":   {"o_totalprice"},
		"lineitem": {"l_quantity", "l_extendedprice", "l_discount"},
		"part":     {"p_size", "p_retailprice"},
		"partsupp": {"ps_availqty", "ps_supplycost"},
		"supplier": {"s_acctbal"},
	}
	dateCols = map[string][]string{
		"orders":   {"o_orderdate"},
		"lineitem": {"l_shipdate", "l_commitdate"},
	}
	stringCols = map[string][]string{
		"customer": {"c_mktsegment"},
		"orders":   {"o_orderpriority", "o_orderstatus"},
		"lineitem": {"l_shipmode", "l_returnflag"},
		"nation":   {"n_name"},
		"region":   {"r_name"},
	}
	stringVals = map[string][]string{
		"c_mktsegment":    {"BUILDING", "MACHINERY", "AUTOMOBILE"},
		"o_orderpriority": {"1-URGENT", "5-LOW"},
		"o_orderstatus":   {"O", "F"},
		"l_shipmode":      {"AIR", "SHIP", "TRUCK"},
		"l_returnflag":    {"R", "N"},
		"n_name":          {"CANADA", "FRANCE", "CHINA"},
		"r_name":          {"ASIA", "EUROPE"},
	}
	keyCols = map[string]string{
		"customer": "c_custkey", "orders": "o_orderkey", "lineitem": "l_orderkey",
		"part": "p_partkey", "partsupp": "ps_partkey", "supplier": "s_suppkey",
		"nation": "n_nationkey", "region": "r_regionkey",
	}
)

func randomSQL(r *rand.Rand) string {
	tables := map[string]bool{}
	start := []string{"lineitem", "orders", "customer", "partsupp"}[r.Intn(4)]
	tables[start] = true
	var joins []fkEdge
	for i := 0; i < r.Intn(3); i++ {
		var candidates []fkEdge
		for _, e := range fkEdges {
			if tables[e.from] != tables[e.to] {
				candidates = append(candidates, e)
			}
		}
		if len(candidates) == 0 {
			break
		}
		e := candidates[r.Intn(len(candidates))]
		tables[e.from], tables[e.to] = true, true
		joins = append(joins, e)
	}

	var names []string
	for t := range tables {
		names = append(names, t)
	}
	sort.Strings(names)

	var where []string
	for _, e := range joins {
		where = append(where, fmt.Sprintf("%s = %s", e.fromCol, e.toCol))
	}
	for _, t := range names {
		if cols := numericCols[t]; len(cols) > 0 && r.Intn(2) == 0 {
			c := cols[r.Intn(len(cols))]
			op := []string{">", "<", ">=", "<="}[r.Intn(4)]
			where = append(where, fmt.Sprintf("%s %s %d", c, op, r.Intn(5000)))
		}
		if cols := dateCols[t]; len(cols) > 0 && r.Intn(3) == 0 {
			c := cols[r.Intn(len(cols))]
			where = append(where, fmt.Sprintf("%s >= '%d-01-01'", c, 1993+r.Intn(4)))
		}
		if cols := stringCols[t]; len(cols) > 0 && r.Intn(3) == 0 {
			c := cols[r.Intn(len(cols))]
			vals := stringVals[c]
			if r.Intn(2) == 0 {
				where = append(where, fmt.Sprintf("%s = '%s'", c, vals[r.Intn(len(vals))]))
			} else {
				where = append(where, fmt.Sprintf("%s IN ('%s', '%s')", c, vals[0], vals[len(vals)-1]))
			}
		}
	}

	var sel, tail string
	switch r.Intn(3) {
	case 0:
		var items []string
		for _, t := range names {
			items = append(items, keyCols[t])
		}
		if cols := numericCols[names[0]]; len(cols) > 0 {
			items = append(items, cols[0])
		}
		sel = strings.Join(items, ", ")
	case 1:
		sel = "DISTINCT " + keyCols[names[r.Intn(len(names))]]
	default:
		key := keyCols[names[r.Intn(len(names))]]
		aggTable := names[r.Intn(len(names))]
		aggCol := keyCols[aggTable]
		if cols := numericCols[aggTable]; len(cols) > 0 {
			aggCol = cols[r.Intn(len(cols))]
		}
		aggs := []string{
			"COUNT(*) AS cnt",
			fmt.Sprintf("SUM(%s) AS s", aggCol),
			fmt.Sprintf("MIN(%s) AS mn", aggCol),
		}
		sel = key + ", " + strings.Join(aggs[:1+r.Intn(3)], ", ")
		tail = " GROUP BY " + key
	}

	sql := "SELECT " + sel + " FROM " + strings.Join(names, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql + tail
}

// Package lostcast flags calls to the engine's checked value helpers —
// exec.CastValue and the *Checked family (types.CompareChecked,
// exec.TruthyChecked, exec.CompareRowsChecked, ...) — whose error result
// is dead: discarded into the blank identifier, assigned to a variable
// that is never read again, or dropped wholesale by using the call as a
// statement. These helpers exist precisely because their unchecked
// counterparts panic or silently mis-compare on mixed kinds; losing the
// error turns a typed failure back into silent corruption.
package lostcast

import (
	"go/ast"
	"go/types"
	"strings"

	"pdwqo/internal/analysis"
)

// Analyzer is the lostcast pass.
var Analyzer = &analysis.Analyzer{
	Name: "lostcast",
	Doc:  "flag checked cast/compare helpers whose error result is dead",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// checkedHelper reports whether the call targets a checked helper, and
// returns its display name and the result positions carrying errors.
func checkedHelper(info *types.Info, call *ast.CallExpr) (string, []int, bool) {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return "", nil, false
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", nil, false
	}
	name := obj.Name()
	if name != "CastValue" && !strings.HasSuffix(name, "Checked") {
		return "", nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", nil, false
	}
	var errPos []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Implements(sig.Results().At(i).Type(), errorType) {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) == 0 {
		return "", nil, false
	}
	return name, errPos, true
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	du := analysis.BuildDefUse(pass.TypesInfo, fd)

	// defByIdent finds the definition created at a given LHS identifier.
	defByIdent := func(id *ast.Ident) *analysis.Def {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		for _, d := range du.DefsOf(obj) {
			if d.Ident == id {
				return d
			}
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if name, _, ok := checkedHelper(pass.TypesInfo, call); ok {
					pass.Reportf(call.Pos(),
						"%s used as a statement drops its result and its error", name)
				}
			}
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := x.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name, errPos, ok := checkedHelper(pass.TypesInfo, call)
			if !ok {
				return true
			}
			for _, i := range errPos {
				if i >= len(x.Lhs) {
					continue
				}
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(id.Pos(),
						"error result of %s is discarded; handle it or carry a justification", name)
					continue
				}
				if d := defByIdent(id); d != nil && len(d.Uses) == 0 {
					pass.Reportf(id.Pos(),
						"error result of %s is assigned to %s but never read", name, id.Name)
				}
			}
		}
		return true
	})
}

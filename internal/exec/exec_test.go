package exec

import (
	"math/rand"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// --- Evaluator tests ---

func env(cols []algebra.ColumnMeta, row types.Row) *Env {
	e := NewEnv(cols)
	e.Row = row
	return e
}

func col(id algebra.ColumnID, k types.Kind) *algebra.ColRef {
	return algebra.NewColRef(algebra.ColumnMeta{ID: id, Name: "x", Type: k})
}

func cnst(v types.Value) *algebra.Const { return &algebra.Const{Val: v} }

func TestEvalComparisons(t *testing.T) {
	cols := []algebra.ColumnMeta{{ID: 1, Type: types.KindInt}}
	e := env(cols, types.Row{types.NewInt(5)})
	cases := []struct {
		op   sqlparser.BinOp
		rhs  int64
		want bool
	}{
		{sqlparser.OpEq, 5, true}, {sqlparser.OpEq, 4, false},
		{sqlparser.OpNe, 4, true}, {sqlparser.OpLt, 6, true},
		{sqlparser.OpLe, 5, true}, {sqlparser.OpGt, 4, true},
		{sqlparser.OpGe, 6, false},
	}
	for _, c := range cases {
		expr := &algebra.Binary{Op: c.op, L: col(1, types.KindInt), R: cnst(types.NewInt(c.rhs))}
		v, err := Eval(expr, e)
		if err != nil || v.Bool() != c.want {
			t.Errorf("5 %s %d = %v (%v)", c.op, c.rhs, v, err)
		}
	}
}

func TestEvalNullPropagation(t *testing.T) {
	cols := []algebra.ColumnMeta{{ID: 1, Type: types.KindInt}}
	e := env(cols, types.Row{types.Null})
	cmp := &algebra.Binary{Op: sqlparser.OpEq, L: col(1, types.KindInt), R: cnst(types.NewInt(1))}
	v, err := Eval(cmp, e)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL = 1 should be NULL: %v", v)
	}
	if ok, err := TruthyChecked(v); err != nil || ok {
		t.Errorf("NULL is not truthy (ok=%v err=%v)", ok, err)
	}
	// NULL AND FALSE = FALSE; NULL OR TRUE = TRUE (three-valued logic).
	and := &algebra.Binary{Op: sqlparser.OpAnd, L: cmp, R: cnst(types.NewBool(false))}
	if v, _ := Eval(and, e); v.IsNull() || v.Bool() {
		t.Errorf("NULL AND FALSE = %v", v)
	}
	or := &algebra.Binary{Op: sqlparser.OpOr, L: cmp, R: cnst(types.NewBool(true))}
	if v, _ := Eval(or, e); v.IsNull() || !v.Bool() {
		t.Errorf("NULL OR TRUE = %v", v)
	}
	andNull := &algebra.Binary{Op: sqlparser.OpAnd, L: cmp, R: cnst(types.NewBool(true))}
	if v, _ := Eval(andNull, e); !v.IsNull() {
		t.Errorf("NULL AND TRUE = %v", v)
	}
}

func TestEvalInList(t *testing.T) {
	cols := []algebra.ColumnMeta{{ID: 1, Type: types.KindInt}}
	e := env(cols, types.Row{types.NewInt(2)})
	in := &algebra.InList{E: col(1, types.KindInt), List: []algebra.Scalar{cnst(types.NewInt(1)), cnst(types.NewInt(2))}}
	if v, _ := Eval(in, e); !v.Bool() {
		t.Error("2 IN (1,2)")
	}
	in.Negated = true
	if v, _ := Eval(in, e); v.Bool() {
		t.Error("2 NOT IN (1,2)")
	}
	// x IN (1, NULL) with x=3: unknown.
	in2 := &algebra.InList{E: col(1, types.KindInt), List: []algebra.Scalar{cnst(types.NewInt(1)), cnst(types.Null)}}
	e.Row = types.Row{types.NewInt(3)}
	if v, _ := Eval(in2, e); !v.IsNull() {
		t.Errorf("3 IN (1,NULL) = %v, want NULL", v)
	}
}

func TestEvalCaseAndCast(t *testing.T) {
	cols := []algebra.ColumnMeta{{ID: 1, Type: types.KindInt}}
	e := env(cols, types.Row{types.NewInt(7)})
	ce := &algebra.Case{
		Whens: []algebra.CaseWhen{
			{Cond: &algebra.Binary{Op: sqlparser.OpGt, L: col(1, types.KindInt), R: cnst(types.NewInt(10))}, Then: cnst(types.NewString("big"))},
			{Cond: &algebra.Binary{Op: sqlparser.OpGt, L: col(1, types.KindInt), R: cnst(types.NewInt(5))}, Then: cnst(types.NewString("mid"))},
		},
		Else: cnst(types.NewString("small")),
	}
	if v, _ := Eval(ce, e); v.Str() != "mid" {
		t.Errorf("case = %v", v)
	}
	cast := &algebra.Cast{E: col(1, types.KindInt), To: types.KindFloat}
	if v, _ := Eval(cast, e); v.Kind() != types.KindFloat || v.Float() != 7 {
		t.Errorf("cast = %v", v)
	}
	if _, err := CastValue(types.NewString("1994-01-01"), types.KindDate); err != nil {
		t.Errorf("string→date cast: %v", err)
	}
	if _, err := CastValue(types.NewBool(true), types.KindDate); err == nil {
		t.Error("bool→date must fail")
	}
}

func TestEvalLike(t *testing.T) {
	cols := []algebra.ColumnMeta{{ID: 1, Type: types.KindString}}
	e := env(cols, types.Row{types.NewString("forest green")})
	like := &algebra.Like{E: col(1, types.KindString), Pattern: "forest%"}
	if v, _ := Eval(like, e); !v.Bool() {
		t.Error("LIKE prefix")
	}
	e.Row = types.Row{types.Null}
	if v, _ := Eval(like, e); !v.IsNull() {
		t.Error("NULL LIKE → NULL")
	}
}

// --- Executor tests over hand-built relations ---

func meta(id algebra.ColumnID, name string, k types.Kind) algebra.ColumnMeta {
	return algebra.ColumnMeta{ID: id, Name: name, Type: k}
}

func intRows(vals ...int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		out[i] = types.Row{types.NewInt(v)}
	}
	return out
}

func testTable(name string, cols []catalog.Column, rows []types.Row) TableSource {
	return func(n string) ([]types.Row, []string, error) {
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.Name
		}
		return rows, names, nil
	}
}

func getOp(tblName string, cols []algebra.ColumnMeta) (*algebra.Tree, TableSource, []types.Row) {
	catCols := make([]catalog.Column, len(cols))
	for i, c := range cols {
		catCols[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	tbl := &catalog.Table{Name: tblName, Columns: catCols, Dist: catalog.Distribution{Kind: catalog.DistReplicated}}
	get := &algebra.Get{Table: tbl, Alias: tblName, Cols: cols}
	return algebra.NewTree(get), nil, nil
}

func TestRunHashJoinKinds(t *testing.T) {
	lCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt)}
	rCols := []algebra.ColumnMeta{meta(2, "b", types.KindInt)}
	l := &Relation{Cols: lCols, Rows: intRows(1, 2, 3, 3)}
	r := &Relation{Cols: rCols, Rows: intRows(2, 3, 3, 4)}
	on := &algebra.Binary{Op: sqlparser.OpEq, L: algebra.NewColRef(lCols[0]), R: algebra.NewColRef(rCols[0])}

	cases := []struct {
		kind algebra.JoinKind
		want int
	}{
		{algebra.JoinInner, 5},     // 2:1, 3×3:4
		{algebra.JoinLeftOuter, 6}, // + unmatched 1
		{algebra.JoinSemi, 3},      // 2, 3, 3
		{algebra.JoinAnti, 1},      // 1
		{algebra.JoinFullOuter, 7}, // + unmatched 4
	}
	for _, c := range cases {
		out, err := runJoin(&algebra.Join{Kind: c.kind, On: on}, l, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Rows) != c.want {
			t.Errorf("%v join rows = %d, want %d", c.kind, len(out.Rows), c.want)
		}
	}
}

func TestRunJoinNullKeysNeverMatch(t *testing.T) {
	lCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt)}
	rCols := []algebra.ColumnMeta{meta(2, "b", types.KindInt)}
	l := &Relation{Cols: lCols, Rows: []types.Row{{types.Null}, {types.NewInt(1)}}}
	r := &Relation{Cols: rCols, Rows: []types.Row{{types.Null}, {types.NewInt(1)}}}
	on := &algebra.Binary{Op: sqlparser.OpEq, L: algebra.NewColRef(lCols[0]), R: algebra.NewColRef(rCols[0])}
	out, err := runJoin(&algebra.Join{Kind: algebra.JoinInner, On: on}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Errorf("NULL keys must not join: %d rows", len(out.Rows))
	}
}

func TestRunJoinResidualPredicate(t *testing.T) {
	lCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt), meta(3, "v", types.KindInt)}
	rCols := []algebra.ColumnMeta{meta(2, "b", types.KindInt), meta(4, "w", types.KindInt)}
	l := &Relation{Cols: lCols, Rows: []types.Row{
		{types.NewInt(1), types.NewInt(10)},
		{types.NewInt(1), types.NewInt(1)},
	}}
	r := &Relation{Cols: rCols, Rows: []types.Row{{types.NewInt(1), types.NewInt(5)}}}
	on := algebra.AndAll([]algebra.Scalar{
		&algebra.Binary{Op: sqlparser.OpEq, L: algebra.NewColRef(lCols[0]), R: algebra.NewColRef(rCols[0])},
		&algebra.Binary{Op: sqlparser.OpGt, L: algebra.NewColRef(lCols[1]), R: algebra.NewColRef(rCols[1])},
	})
	out, err := runJoin(&algebra.Join{Kind: algebra.JoinInner, On: on}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][1].Int() != 10 {
		t.Errorf("residual: %v", out.Rows)
	}
}

func TestRunCrossJoinUsesLoops(t *testing.T) {
	lCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt)}
	rCols := []algebra.ColumnMeta{meta(2, "b", types.KindInt)}
	l := &Relation{Cols: lCols, Rows: intRows(1, 2)}
	r := &Relation{Cols: rCols, Rows: intRows(10, 20, 30)}
	out, err := runJoin(&algebra.Join{Kind: algebra.JoinCross}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 6 {
		t.Errorf("cross join: %d rows", len(out.Rows))
	}
}

func TestRunGroupByAggregates(t *testing.T) {
	cols := []algebra.ColumnMeta{meta(1, "k", types.KindInt), meta(2, "v", types.KindFloat)}
	in := &Relation{Cols: cols, Rows: []types.Row{
		{types.NewInt(1), types.NewFloat(2)},
		{types.NewInt(1), types.NewFloat(3)},
		{types.NewInt(2), types.NewFloat(5)},
		{types.NewInt(2), types.Null},
	}}
	gb := &algebra.GroupBy{
		Keys: []algebra.ColumnID{1},
		Aggs: []algebra.AggDef{
			{Func: algebra.AggSum, Arg: algebra.NewColRef(cols[1]), ID: 10, Name: "s"},
			{Func: algebra.AggCount, Arg: algebra.NewColRef(cols[1]), ID: 11, Name: "c"},
			{Func: algebra.AggCount, ID: 12, Name: "star"},
			{Func: algebra.AggMin, Arg: algebra.NewColRef(cols[1]), ID: 13, Name: "mn"},
			{Func: algebra.AggMax, Arg: algebra.NewColRef(cols[1]), ID: 14, Name: "mx"},
		},
	}
	outCols := algebra.OutputColsFromSchemas(gb, [][]algebra.ColumnMeta{cols})
	out, err := runGroupBy(gb, in, outCols)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("groups: %d", len(out.Rows))
	}
	byKey := map[int64]types.Row{}
	for _, r := range out.Rows {
		byKey[r[0].Int()] = r
	}
	g1 := byKey[1]
	if g1[1].Float() != 5 || g1[2].Int() != 2 || g1[3].Int() != 2 || g1[4].Float() != 2 || g1[5].Float() != 3 {
		t.Errorf("group 1: %v", g1)
	}
	g2 := byKey[2]
	// COUNT(v) skips the NULL; COUNT(*) does not; SUM skips NULL.
	if g2[1].Float() != 5 || g2[2].Int() != 1 || g2[3].Int() != 2 {
		t.Errorf("group 2: %v", g2)
	}
}

func TestRunScalarAggregateEmptyInput(t *testing.T) {
	cols := []algebra.ColumnMeta{meta(1, "v", types.KindInt)}
	in := &Relation{Cols: cols}
	gb := &algebra.GroupBy{
		Aggs: []algebra.AggDef{
			{Func: algebra.AggSum, Arg: algebra.NewColRef(cols[0]), ID: 10, Name: "s"},
			{Func: algebra.AggCount, ID: 11, Name: "c"},
		},
	}
	outCols := algebra.OutputColsFromSchemas(gb, [][]algebra.ColumnMeta{cols})
	out, err := runGroupBy(gb, in, outCols)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("scalar agg over empty input must emit one row: %d", len(out.Rows))
	}
	if !out.Rows[0][0].IsNull() || out.Rows[0][1].Int() != 0 {
		t.Errorf("SUM=NULL COUNT=0 expected: %v", out.Rows[0])
	}
}

func TestRunDistinctAggregate(t *testing.T) {
	cols := []algebra.ColumnMeta{meta(1, "v", types.KindInt)}
	in := &Relation{Cols: cols, Rows: intRows(1, 1, 2, 2, 3)}
	gb := &algebra.GroupBy{
		Aggs: []algebra.AggDef{
			{Func: algebra.AggCount, Arg: algebra.NewColRef(cols[0]), Distinct: true, ID: 10, Name: "d"},
			{Func: algebra.AggSum, Arg: algebra.NewColRef(cols[0]), Distinct: true, ID: 11, Name: "sd"},
		},
	}
	outCols := algebra.OutputColsFromSchemas(gb, [][]algebra.ColumnMeta{cols})
	out, err := runGroupBy(gb, in, outCols)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].Int() != 3 || out.Rows[0][1].Int() != 6 {
		t.Errorf("distinct aggs: %v", out.Rows[0])
	}
}

func TestRunSortAndTop(t *testing.T) {
	cols := []algebra.ColumnMeta{meta(1, "v", types.KindInt)}
	in := &Relation{Cols: cols, Rows: intRows(3, 1, 2, 5, 4)}
	out, err := runSort(&algebra.Sort{Keys: []algebra.SortKey{{ID: 1, Desc: true}}, Top: 3}, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 || out.Rows[0][0].Int() != 5 || out.Rows[2][0].Int() != 3 {
		t.Errorf("top3 desc: %v", out.Rows)
	}
	// NULLs sort first ascending.
	in2 := &Relation{Cols: cols, Rows: []types.Row{{types.NewInt(1)}, {types.Null}}}
	out2, err := runSort(&algebra.Sort{Keys: []algebra.SortKey{{ID: 1}}}, in2)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Rows[0][0].IsNull() {
		t.Error("NULL sorts first")
	}
}

func TestRunGetPrunedColumns(t *testing.T) {
	catCols := []catalog.Column{
		{Name: "a", Type: types.KindInt},
		{Name: "b", Type: types.KindInt},
		{Name: "c", Type: types.KindInt},
	}
	tbl := &catalog.Table{Name: "t", Columns: catCols, Dist: catalog.Distribution{Kind: catalog.DistReplicated}}
	// Scan only column c (pruned Get).
	get := &algebra.Get{Table: tbl, Alias: "t", Cols: []algebra.ColumnMeta{meta(9, "c", types.KindInt)}}
	src := testTable("t", catCols, []types.Row{{types.NewInt(1), types.NewInt(2), types.NewInt(3)}})
	out, err := Run(algebra.NewTree(get), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].Int() != 3 {
		t.Errorf("pruned scan: %v", out.Rows)
	}
}

// Property test: hash join ≡ nested-loop join on random data.
func TestHashJoinMatchesLoopJoin(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	lCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt), meta(3, "x", types.KindInt)}
	rCols := []algebra.ColumnMeta{meta(2, "b", types.KindInt), meta(4, "y", types.KindInt)}
	for trial := 0; trial < 20; trial++ {
		l := &Relation{Cols: lCols}
		rr := &Relation{Cols: rCols}
		for i := 0; i < 30; i++ {
			l.Rows = append(l.Rows, types.Row{types.NewInt(r.Int63n(10)), types.NewInt(r.Int63n(100))})
			rr.Rows = append(rr.Rows, types.Row{types.NewInt(r.Int63n(10)), types.NewInt(r.Int63n(100))})
		}
		on := &algebra.Binary{Op: sqlparser.OpEq, L: algebra.NewColRef(lCols[0]), R: algebra.NewColRef(rCols[0])}
		for _, kind := range []algebra.JoinKind{algebra.JoinInner, algebra.JoinLeftOuter, algebra.JoinSemi, algebra.JoinAnti} {
			op := &algebra.Join{Kind: kind, On: on}
			outCols := joinOutCols(op, l.Cols, rr.Cols)
			h, err := hashJoin(op, l, rr, []int{0}, []int{0}, nil, outCols)
			if err != nil {
				t.Fatal(err)
			}
			n, err := loopJoin(op, l, rr, on, outCols)
			if err != nil {
				t.Fatal(err)
			}
			if len(h.Rows) != len(n.Rows) {
				t.Fatalf("%v: hash %d vs loop %d rows", kind, len(h.Rows), len(n.Rows))
			}
		}
	}
}

func TestSemiAntiJoinResidualSeesRightColumns(t *testing.T) {
	// Regression: semi/anti joins output left columns only, but residual
	// predicates must still evaluate over the combined row.
	lCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt), meta(3, "v", types.KindInt)}
	rCols := []algebra.ColumnMeta{meta(2, "b", types.KindInt), meta(4, "w", types.KindInt)}
	l := &Relation{Cols: lCols, Rows: []types.Row{
		{types.NewInt(1), types.NewInt(10)},
		{types.NewInt(2), types.NewInt(10)},
	}}
	r := &Relation{Cols: rCols, Rows: []types.Row{
		{types.NewInt(1), types.NewInt(10)}, // matches a=1 but w == v
		{types.NewInt(2), types.NewInt(99)}, // matches a=2 with w <> v
	}}
	on := algebra.AndAll([]algebra.Scalar{
		&algebra.Binary{Op: sqlparser.OpEq, L: algebra.NewColRef(lCols[0]), R: algebra.NewColRef(rCols[0])},
		&algebra.Binary{Op: sqlparser.OpNe, L: algebra.NewColRef(rCols[1]), R: algebra.NewColRef(lCols[1])},
	})
	semi, err := runJoin(&algebra.Join{Kind: algebra.JoinSemi, On: on}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(semi.Rows) != 1 || semi.Rows[0][0].Int() != 2 {
		t.Errorf("semi: %v", semi.Rows)
	}
	anti, err := runJoin(&algebra.Join{Kind: algebra.JoinAnti, On: on}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(anti.Rows) != 1 || anti.Rows[0][0].Int() != 1 {
		t.Errorf("anti: %v", anti.Rows)
	}
}

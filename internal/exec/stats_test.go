package exec

import (
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// TestRunStatsCountsOperators checks the work tally for a small
// Select-over-Get tree: two operators, scan rows counted once, filter
// output counted at its own (reduced) cardinality.
func TestRunStatsCountsOperators(t *testing.T) {
	catCols := []catalog.Column{{Name: "a", Type: types.KindInt}}
	tbl := &catalog.Table{Name: "t", Columns: catCols, Dist: catalog.Distribution{Kind: catalog.DistReplicated}}
	getCols := []algebra.ColumnMeta{meta(1, "a", types.KindInt)}
	get := &algebra.Get{Table: tbl, Alias: "t", Cols: getCols}
	filter := &algebra.Select{Filter: &algebra.Binary{
		Op: sqlparser.OpGt, L: algebra.NewColRef(getCols[0]), R: cnst(types.NewInt(1)),
	}}
	tree := algebra.NewTree(filter, algebra.NewTree(get))
	src := testTable("t", catCols, intRows(1, 2, 3))

	var st Stats
	out, err := RunStats(tree, src, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("filter output = %d rows, want 2", len(out.Rows))
	}
	if st.Ops != 2 {
		t.Errorf("Ops = %d, want 2 (Get + Select)", st.Ops)
	}
	if st.ScanRows != 3 {
		t.Errorf("ScanRows = %d, want 3", st.ScanRows)
	}
	if st.Rows != 5 { // 3 scanned + 2 surviving the filter
		t.Errorf("Rows = %d, want 5", st.Rows)
	}

	// The nil collector must behave exactly like Run.
	out2, err := RunStats(tree, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Rows) != len(out.Rows) {
		t.Errorf("nil Stats changed the result: %d vs %d rows", len(out2.Rows), len(out.Rows))
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Ops: 1, Rows: 10, ScanRows: 4}
	a.Merge(Stats{Ops: 2, Rows: 5, ScanRows: 1})
	if a.Ops != 3 || a.Rows != 15 || a.ScanRows != 5 {
		t.Errorf("Merge = %+v", a)
	}
}

// Package types implements the value model shared by every layer of the
// system: the SQL front end, the statistics subsystem, the optimizers and
// the distributed execution engine.
//
// A Value is a compact tagged union. NULL is a first-class kind rather than
// a sentinel inside each kind, which keeps three-valued logic explicit in
// the expression evaluator.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the SQL types supported by the engine.
type Kind uint8

// Supported kinds. Date is stored as days since the Unix epoch; TPC-H money
// columns are modeled as Float (the simulator does not need exact decimal
// semantics, and the optimizer only consumes widths and statistics).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BIT"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of the kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Comparable reports whether two kinds can be ordered against each other.
// All numeric kinds are mutually comparable; otherwise kinds must match.
func Comparable(a, b Kind) bool {
	if a == KindNull || b == KindNull {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b
}

// Width returns the byte width used for row-size accounting, mirroring how
// the paper's cost model consumes an average row width w. Strings report
// their payload length plus a two-byte length prefix.
func (k Kind) Width() int {
	switch k {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt:
		return 8
	case KindFloat:
		return 8
	case KindDate:
		return 4
	case KindString:
		return 16 // default estimate; actual values report exact widths
	default:
		return 8
	}
}

// Value is an immutable SQL value.
type Value struct {
	kind Kind
	i    int64 // Int, Bool (0/1), Date (days since epoch)
	f    float64
	s    string
}

// Null is the NULL value.
var Null = Value{kind: KindNull}

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BIT value.
func NewBool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// NewDate returns a DATE value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{kind: KindDate, i: days} }

// ParseDate parses a 'YYYY-MM-DD' literal (a 'YYYY-MM-DD hh:mm:ss...' suffix
// is tolerated and ignored) into a DATE value.
func ParseDate(s string) (Value, error) {
	if len(s) > 10 {
		s = s[:10]
	}
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustParseDate is ParseDate for literals known valid at compile time.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// KindError is the typed failure of a checked accessor or comparison: a
// value of Kind was used where Want was required. Expressions over
// user-supplied literals can reach these mismatches at runtime (e.g. a
// CASE whose branches yield different kinds), so the engine-facing entry
// points report them as errors; the panicking accessors below remain for
// call sites where the binder has already proven the kind.
type KindError struct {
	Op   string
	Kind Kind
	Want Kind
}

// Error renders the mismatch.
func (e *KindError) Error() string {
	return fmt.Sprintf("types: %s on %s (want %s)", e.Op, e.Kind, e.Want)
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the BIGINT payload. It panics on other kinds.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the FLOAT payload, coercing BIGINT. It panics otherwise.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("types: Float() on %s", v.kind))
}

// Str returns the VARCHAR payload. It panics on other kinds.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s", v.kind))
	}
	return v.s
}

// Bool returns the BIT payload. It panics on other kinds.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s", v.kind))
	}
	return v.i != 0
}

// DateDays returns the DATE payload in days since the Unix epoch.
func (v Value) DateDays() int64 {
	if v.kind != KindDate {
		panic(fmt.Sprintf("types: DateDays() on %s", v.kind))
	}
	return v.i
}

// AsInt is the checked form of Int for kinds decided at runtime.
func (v Value) AsInt() (int64, error) {
	if v.kind != KindInt {
		return 0, &KindError{Op: "Int()", Kind: v.kind, Want: KindInt}
	}
	return v.i, nil
}

// AsFloat is the checked form of Float (BIGINT coerces).
func (v Value) AsFloat() (float64, error) {
	switch v.kind {
	case KindFloat:
		return v.f, nil
	case KindInt:
		return float64(v.i), nil
	}
	return 0, &KindError{Op: "Float()", Kind: v.kind, Want: KindFloat}
}

// AsStr is the checked form of Str.
func (v Value) AsStr() (string, error) {
	if v.kind != KindString {
		return "", &KindError{Op: "Str()", Kind: v.kind, Want: KindString}
	}
	return v.s, nil
}

// AsBool is the checked form of Bool.
func (v Value) AsBool() (bool, error) {
	if v.kind != KindBool {
		return false, &KindError{Op: "Bool()", Kind: v.kind, Want: KindBool}
	}
	return v.i != 0, nil
}

// Width returns the exact byte width of this value for cost accounting.
func (v Value) Width() int {
	if v.kind == KindString {
		return len(v.s) + 2
	}
	return v.kind.Width()
}

// String renders the value for plan text and result display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// SQLLiteral renders the value as a SQL literal for DSQL generation.
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindString:
		return "'" + escapeSQL(v.s) + "'"
	case KindDate:
		return "CAST('" + v.String() + "' AS DATE)"
	default:
		return v.String()
	}
}

func escapeSQL(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// Compare orders a against b: -1, 0, or +1. NULL sorts before everything
// (including another NULL); numeric kinds compare after float coercion.
// Compare panics on incomparable kinds — use it only where the binder has
// proven both sides well-typed; runtime-kinded paths (sorting, MIN/MAX,
// literal folding) go through CompareChecked.
func Compare(a, b Value) int {
	c, err := CompareChecked(a, b)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// CompareChecked is Compare returning an error instead of panicking on
// incomparable kinds: mixed-kind data is reachable from user-supplied
// literals (e.g. CASE branches of different types), so engine-facing
// comparison sites must not trust the kinds.
func CompareChecked(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpOrdered(a.i, b.i), nil
		}
		return cmpFloat(a.Float(), b.Float()), nil
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("types: comparing %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindBool, KindDate:
		return cmpOrdered(a.i, b.i), nil
	case KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("types: comparing %s values", a.kind)
}

func cmpOrdered(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports SQL equality under two-valued semantics used for grouping
// and hash-join probing: NULLs match NULLs here. Predicate equality (which
// treats NULL as unknown) is handled by the expression evaluator.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return a.kind == b.kind
	}
	if !Comparable(a.kind, b.kind) {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a distribution hash of the value. Numeric kinds hash by
// float-coerced payload so 1 and 1.0 land on the same node, matching the
// equality relation used for joins.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindBool, KindDate:
		writeUint64(h, uint64(v.i), byte(v.kind))
	case KindInt:
		writeUint64(h, math.Float64bits(float64(v.i)), 2)
	case KindFloat:
		writeUint64(h, math.Float64bits(v.f), 2)
	case KindString:
		h.Write([]byte{5})
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, v uint64, tag byte) {
	var buf [9]byte
	buf[0] = tag
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// HashRowKey hashes a multi-column key by chaining column hashes; used both
// by the DMS shuffle router and by hash-based executors.
func HashRowKey(vals []Value) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, v := range vals {
		h ^= Hash(v)
		h *= 1099511628211
	}
	return h
}

// Row is a tuple of values.
type Row []Value

// Width returns the total byte width of the row.
func (r Row) Width() int {
	w := 0
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// Clone returns a copy of the row safe to retain across iterator calls.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for debugging and result display.
func (r Row) String() string {
	out := make([]byte, 0, 32)
	out = append(out, '(')
	for i, v := range r {
		if i > 0 {
			out = append(out, ", "...)
		}
		out = append(out, v.String()...)
	}
	return string(append(out, ')'))
}

package algebra

// Phys marks an operator payload as a physical implementation of a logical
// operator: a Get implemented by a table scan, a Join by a hash join, and
// so on. The serial optimizer and the PDW optimizer both build plans out
// of Phys nodes; PDW additionally defines its own data-movement payloads.
type Phys struct {
	Algo string // e.g. "TableScan", "HashJoin", "HashAggregate"
	Of   Operator
}

// NewPhys wraps a logical payload in a physical algorithm choice.
func NewPhys(algo string, of Operator) *Phys { return &Phys{Algo: algo, Of: of} }

// OpName implements Operator.
func (p *Phys) OpName() string { return p.Algo }

// Arity implements Operator.
func (p *Phys) Arity() int { return p.Of.Arity() }

// Fingerprint implements Operator.
func (p *Phys) Fingerprint() string { return p.Algo + "{" + p.Of.Fingerprint() + "}" }

// Physical algorithm names used by the serial optimizer.
const (
	AlgoTableScan  = "TableScan"
	AlgoValuesScan = "ValuesScan"
	AlgoFilter     = "Filter"
	AlgoCompute    = "ComputeScalar"
	AlgoHashJoin   = "HashJoin"
	AlgoLoopJoin   = "NestedLoopJoin"
	AlgoHashAgg    = "HashAggregate"
	AlgoStreamAgg  = "StreamAggregate"
	AlgoSort       = "Sort"
	AlgoConcat     = "Concatenation"
)

package memoxml

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/memo"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

func testShell(t *testing.T) *catalog.Shell {
	t.Helper()
	s := catalog.NewShell(4)
	mkVals := func(n int, mod int64) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			v := int64(i)
			if mod > 0 {
				v %= mod
			}
			out[i] = types.NewInt(v)
		}
		return out
	}
	cst, err := stats.BuildTable(map[string][]types.Value{
		"c_custkey": mkVals(100, 0), "c_nationkey": mkVals(100, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	ost, err := stats.BuildTable(map[string][]types.Value{
		"o_orderkey": mkVals(1000, 0), "o_custkey": mkVals(1000, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: types.KindInt},
			{Name: "c_nationkey", Type: types.KindInt},
		},
		PrimaryKey: []string{"c_custkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "c_custkey"},
		Stats:      cst,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: types.KindInt},
			{Name: "o_custkey", Type: types.KindInt},
		},
		PrimaryKey: []string{"o_orderkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "o_orderkey"},
		Stats:      ost,
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func buildMemo(t *testing.T, shell *catalog.Shell, sql string) *memo.Memo {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(shell)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Optimize(shell, norm, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const roundTripSQL = `SELECT c_nationkey, COUNT(*) AS cnt
	FROM customer c, orders o
	WHERE c.c_custkey = o.o_custkey AND o.o_orderkey > 10
	GROUP BY c_nationkey
	HAVING COUNT(*) > 1
	ORDER BY cnt DESC`

func TestEncodeDecodeRoundTrip(t *testing.T) {
	shell := testShell(t)
	m := buildMemo(t, shell, roundTripSQL)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), xmlHeaderPrefix) {
		t.Error("missing XML header")
	}
	d, err := Decode(data, shell)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != int(m.Root) {
		t.Errorf("root: %d vs %d", d.Root, m.Root)
	}
	if len(d.Groups) != m.NumGroups() {
		// Some groups may be empty after merges; compare non-empty.
		n := 0
		for _, g := range m.Groups[1:] {
			if len(g.Exprs) > 0 {
				n++
			}
		}
		if len(d.Groups) != n {
			t.Errorf("groups: %d vs %d non-empty", len(d.Groups), n)
		}
	}
	// Every expression must round-trip with identical fingerprints.
	for _, g := range m.Groups[1:] {
		if len(g.Exprs) == 0 {
			continue
		}
		dg, ok := d.Groups[int(g.ID)]
		if !ok {
			t.Fatalf("group %d missing after decode", g.ID)
		}
		if len(dg.Exprs) != len(g.Exprs) {
			t.Fatalf("group %d: %d exprs vs %d", g.ID, len(dg.Exprs), len(g.Exprs))
		}
		for i, e := range g.Exprs {
			if dg.Exprs[i].Op.Fingerprint() != e.Op.Fingerprint() {
				t.Errorf("group %d expr %d: %s vs %s", g.ID, i, dg.Exprs[i].Op.Fingerprint(), e.Op.Fingerprint())
			}
			if len(dg.Exprs[i].Children) != len(e.Children) {
				t.Errorf("group %d expr %d children mismatch", g.ID, i)
			}
			if dg.Exprs[i].Physical != e.Physical {
				t.Errorf("group %d expr %d physical flag", g.ID, i)
			}
		}
		// Properties round-trip.
		if g.Props != nil {
			if dg.Rows != g.Props.Rows {
				t.Errorf("group %d rows: %v vs %v", g.ID, dg.Rows, g.Props.Rows)
			}
			if len(dg.OutCols) != len(g.Props.OutCols) {
				t.Errorf("group %d outcols", g.ID)
			}
			for id, cs := range g.Props.Cols {
				got, ok := dg.ColStats[id]
				if !ok || got.NDV != cs.NDV {
					t.Errorf("group %d colstat c%d: %+v vs %+v", g.ID, id, got, cs)
				}
			}
		}
	}
}

const xmlHeaderPrefix = "<?xml"

func TestWinnerSurvivesRoundTrip(t *testing.T) {
	shell := testShell(t)
	m := buildMemo(t, shell, roundTripSQL)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(data, shell)
	if err != nil {
		t.Fatal(err)
	}
	root := d.Groups[d.Root]
	winners := 0
	for _, e := range root.Exprs {
		if e.Winner {
			winners++
			if !e.Physical {
				t.Error("winner must be physical")
			}
		}
	}
	if winners != 1 {
		t.Errorf("root group winners = %d, want 1", winners)
	}
}

func TestScalarKindsRoundTrip(t *testing.T) {
	shell := testShell(t)
	// Exercise every scalar kind through a single filter.
	m := buildMemo(t, shell, `SELECT c_custkey FROM customer
		WHERE (c_custkey > 1 AND c_custkey + 2 * 3 < 100)
		   OR c_nationkey IN (1, 2)
		   OR c_custkey IS NULL
		   OR -c_custkey = 5`)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, shell); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	shell := testShell(t)
	if _, err := Decode([]byte("not xml at all <"), shell); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := Decode([]byte(`<Memo root="9" maxCol="1"></Memo>`), shell); err == nil {
		t.Error("missing root group must fail")
	}
	bad := `<Memo root="1" maxCol="1"><Group id="1"><Expr op="Get" table="nope"></Expr></Group></Memo>`
	if _, err := Decode([]byte(bad), shell); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestValuesRoundTrip(t *testing.T) {
	shell := testShell(t)
	m := buildMemo(t, shell, "SELECT c_custkey FROM customer WHERE c_custkey > 5 AND c_custkey < 2")
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(data, shell)
	if err != nil {
		t.Fatal(err)
	}
	foundValues := false
	for _, g := range d.Groups {
		for _, e := range g.Exprs {
			if _, ok := e.Op.(*algebra.Values); ok {
				foundValues = true
			}
		}
	}
	if !foundValues {
		t.Error("Values operator must round-trip")
	}
}

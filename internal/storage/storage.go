// Package storage implements the per-node row store backing each simulated
// SQL Server instance: base tables loaded at appliance construction and
// temp tables materialized by DMS operations (paper §2.3). Bulk inserts are
// metered in bytes so the cost model can be calibrated against observed
// writer/bulk-copy work.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"pdwqo/internal/catalog"
	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

// Table is one stored table's rows plus schema. Rows remain the
// authoritative representation (they are what DMS moves deliver); the
// columnar mirror is built on demand for the vectorized executor and
// invalidated whenever the row count changes.
type Table struct {
	Name string
	Cols []catalog.Column
	Rows []types.Row

	colMirror *vec.Table
	mirrorLen int
}

// DB is a node-local database instance.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// BytesWritten meters bulk-insert volume for cost calibration.
	BytesWritten int64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// Create registers a table; creating an existing name fails.
func (db *DB) Create(name string, cols []catalog.Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("storage: table %q already exists", name)
	}
	db.tables[key] = &Table{Name: name, Cols: cols}
	return nil
}

// Drop removes a table if present.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// Rename atomically republishes a table under a new name — the publish
// half of the engine's stage-then-rename DMS delivery. Renaming a missing
// table or onto an existing name fails, so a retried delivery must drop
// its leftovers first.
func (db *DB) Rename(oldName, newName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	oldKey, newKey := strings.ToLower(oldName), strings.ToLower(newName)
	t, ok := db.tables[oldKey]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", oldName)
	}
	if _, ok := db.tables[newKey]; ok {
		return fmt.Errorf("storage: table %q already exists", newName)
	}
	delete(db.tables, oldKey)
	t.Name = newName
	db.tables[newKey] = t
	return nil
}

// BulkInsert appends rows, metering bytes (the SQLBlkCpy component of the
// paper's Figure 5).
func (db *DB) BulkInsert(name string, rows []types.Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", name)
	}
	for _, r := range rows {
		if len(r) != len(t.Cols) {
			return fmt.Errorf("storage: %q: row arity %d, want %d", name, len(r), len(t.Cols))
		}
		db.BytesWritten += int64(r.Width())
	}
	t.Rows = append(t.Rows, rows...)
	return nil
}

// Scan returns a table's rows (shared slice; callers must not mutate).
func (db *DB) Scan(name string) ([]types.Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t.Rows, nil
}

// ScanColumns returns the table's typed columnar mirror (shared; callers
// must not mutate), building or refreshing it when rows arrived since
// the last columnarization. The mirror is cached per table under the
// write lock so concurrent queries columnarize a hot table once.
func (db *DB) ScanColumns(name string) (*vec.Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	if t.colMirror == nil || t.mirrorLen != len(t.Rows) {
		names := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			names[i] = c.Name
		}
		t.colMirror = vec.FromRows(names, t.Rows)
		t.mirrorLen = len(t.Rows)
	}
	return t.colMirror, nil
}

// Table returns the stored table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// Names lists stored table names (unordered).
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

package storage

import (
	"sync"
	"testing"

	"pdwqo/internal/catalog"
	"pdwqo/internal/types"
)

func cols() []catalog.Column {
	return []catalog.Column{
		{Name: "a", Type: types.KindInt},
		{Name: "b", Type: types.KindString},
	}
}

func TestCreateInsertScan(t *testing.T) {
	db := NewDB()
	if err := db.Create("t", cols()); err != nil {
		t.Fatal(err)
	}
	if err := db.Create("t", cols()); err == nil {
		t.Error("duplicate create must fail")
	}
	rows := []types.Row{
		{types.NewInt(1), types.NewString("x")},
		{types.NewInt(2), types.NewString("yy")},
	}
	if err := db.BulkInsert("t", rows); err != nil {
		t.Fatal(err)
	}
	got, err := db.Scan("T") // case-insensitive
	if err != nil || len(got) != 2 {
		t.Fatalf("scan: %v %v", got, err)
	}
	if db.BytesWritten != int64(rows[0].Width()+rows[1].Width()) {
		t.Errorf("bytes metered: %d", db.BytesWritten)
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDB()
	if err := db.BulkInsert("missing", nil); err == nil {
		t.Error("unknown table")
	}
	if err := db.Create("t", cols()); err != nil {
		t.Fatal(err)
	}
	if err := db.BulkInsert("t", []types.Row{{types.NewInt(1)}}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestDrop(t *testing.T) {
	db := NewDB()
	if err := db.Create("t", cols()); err != nil {
		t.Fatal(err)
	}
	db.Drop("T")
	if _, err := db.Scan("t"); err == nil {
		t.Error("dropped table must be gone")
	}
	db.Drop("never-existed") // no-op
}

func TestNames(t *testing.T) {
	db := NewDB()
	for _, n := range []string{"x", "y"} {
		if err := db.Create(n, cols()); err != nil {
			t.Fatal(err)
		}
	}
	if len(db.Names()) != 2 {
		t.Error("names")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	db := NewDB()
	if err := db.Create("t", cols()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = db.BulkInsert("t", []types.Row{{types.NewInt(1), types.NewString("v")}})
		}()
		go func() {
			defer wg.Done()
			_, _ = db.Scan("t")
		}()
	}
	wg.Wait()
	rows, _ := db.Scan("t")
	if len(rows) != 8 {
		t.Errorf("rows after concurrent writes: %d", len(rows))
	}
}

func TestRename(t *testing.T) {
	db := NewDB()
	if err := db.Create("t__stage", cols()); err != nil {
		t.Fatal(err)
	}
	rows := []types.Row{{types.NewInt(1), types.NewString("x")}}
	if err := db.BulkInsert("t__stage", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Rename("missing", "t"); err == nil {
		t.Error("renaming an unknown table must fail")
	}
	if err := db.Create("occupied", cols()); err != nil {
		t.Fatal(err)
	}
	if err := db.Rename("t__stage", "occupied"); err == nil {
		t.Error("renaming over an existing table must fail")
	}
	if err := db.Rename("T__STAGE", "t"); err != nil { // case-insensitive source
		t.Fatal(err)
	}
	got, err := db.Scan("t")
	if err != nil || len(got) != 1 {
		t.Fatalf("renamed table rows: %v %v", got, err)
	}
	if _, err := db.Scan("t__stage"); err == nil {
		t.Error("old name must be gone after rename")
	}
	if tbl := db.Table("t"); tbl == nil || tbl.Name != "t" {
		t.Errorf("table record must carry the new name: %+v", tbl)
	}
}

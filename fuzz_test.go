package pdwqo

// Randomized end-to-end testing: a seeded generator produces valid SQL
// over the TPC-H schema (join chains along foreign keys, filters,
// aggregation, DISTINCT, TOP); every query is optimized, executed on the
// appliance, and compared value-for-value against the single-node
// reference executor. This is the E11 correctness contract hammered across
// a few hundred plan shapes instead of a hand-picked suite.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// fkEdge is a joinable pair in the TPC-H schema.
type fkEdge struct {
	from, fromCol string
	to, toCol     string
}

var fkEdges = []fkEdge{
	{"orders", "o_custkey", "customer", "c_custkey"},
	{"lineitem", "l_orderkey", "orders", "o_orderkey"},
	{"lineitem", "l_partkey", "part", "p_partkey"},
	{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
	{"partsupp", "ps_partkey", "part", "p_partkey"},
	{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
	{"customer", "c_nationkey", "nation", "n_nationkey"},
	{"supplier", "s_nationkey", "nation", "n_nationkey"},
	{"nation", "n_regionkey", "region", "r_regionkey"},
}

// numeric/date/string columns usable in filters and aggregates.
var (
	numericCols = map[string][]string{
		"customer": {"c_acctbal"},
		"orders":   {"o_totalprice"},
		"lineitem": {"l_quantity", "l_extendedprice", "l_discount"},
		"part":     {"p_size", "p_retailprice"},
		"partsupp": {"ps_availqty", "ps_supplycost"},
		"supplier": {"s_acctbal"},
	}
	dateCols = map[string][]string{
		"orders":   {"o_orderdate"},
		"lineitem": {"l_shipdate", "l_commitdate"},
	}
	stringCols = map[string][]string{
		"customer": {"c_mktsegment"},
		"orders":   {"o_orderpriority", "o_orderstatus"},
		"lineitem": {"l_shipmode", "l_returnflag"},
		"part":     {"p_name", "p_container"},
		"nation":   {"n_name"},
		"region":   {"r_name"},
	}
	stringVals = map[string][]string{
		"c_mktsegment":    {"BUILDING", "MACHINERY", "AUTOMOBILE"},
		"o_orderpriority": {"1-URGENT", "5-LOW"},
		"o_orderstatus":   {"O", "F"},
		"l_shipmode":      {"AIR", "SHIP", "TRUCK"},
		"l_returnflag":    {"R", "N"},
		"p_name":          {"forest", "green", "almond"},
		"p_container":     {"SM CASE", "LG BOX"},
		"n_name":          {"CANADA", "FRANCE", "CHINA"},
		"r_name":          {"ASIA", "EUROPE"},
	}
	keyCols = map[string]string{
		"customer": "c_custkey", "orders": "o_orderkey", "lineitem": "l_orderkey",
		"part": "p_partkey", "partsupp": "ps_partkey", "supplier": "s_suppkey",
		"nation": "n_nationkey", "region": "r_regionkey",
	}
)

// randomQuery builds one SQL statement.
func randomQuery(r *rand.Rand) string {
	// Pick a connected set of tables by walking FK edges.
	tables := map[string]bool{}
	start := []string{"lineitem", "orders", "customer", "partsupp"}[r.Intn(4)]
	tables[start] = true
	var joins []fkEdge
	for i := 0; i < r.Intn(3); i++ {
		var candidates []fkEdge
		for _, e := range fkEdges {
			if tables[e.from] != tables[e.to] {
				candidates = append(candidates, e)
			}
		}
		if len(candidates) == 0 {
			break
		}
		e := candidates[r.Intn(len(candidates))]
		tables[e.from] = true
		tables[e.to] = true
		joins = append(joins, e)
	}

	var names []string
	for t := range tables {
		names = append(names, t)
	}
	// Deterministic order for reproducible SQL.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}

	var where []string
	for _, e := range joins {
		where = append(where, fmt.Sprintf("%s = %s", e.fromCol, e.toCol))
	}
	// Random filters.
	for _, t := range names {
		if cols := numericCols[t]; len(cols) > 0 && r.Intn(2) == 0 {
			c := cols[r.Intn(len(cols))]
			op := []string{">", "<", ">=", "<="}[r.Intn(4)]
			where = append(where, fmt.Sprintf("%s %s %d", c, op, r.Intn(5000)))
		}
		if cols := dateCols[t]; len(cols) > 0 && r.Intn(3) == 0 {
			c := cols[r.Intn(len(cols))]
			year := 1993 + r.Intn(4)
			where = append(where, fmt.Sprintf("%s >= '%d-01-01'", c, year))
		}
		if cols := stringCols[t]; len(cols) > 0 && r.Intn(3) == 0 {
			c := cols[r.Intn(len(cols))]
			vals := stringVals[c]
			v := vals[r.Intn(len(vals))]
			if c == "p_name" {
				where = append(where, fmt.Sprintf("%s LIKE '%s%%'", c, v))
			} else if r.Intn(2) == 0 {
				where = append(where, fmt.Sprintf("%s = '%s'", c, v))
			} else {
				where = append(where, fmt.Sprintf("%s IN ('%s', '%s')", c, vals[0], vals[len(vals)-1]))
			}
		}
	}

	// Select shape: plain projection, DISTINCT keys, or aggregation.
	shape := r.Intn(3)
	var sel, tail string
	switch shape {
	case 0:
		var items []string
		for _, t := range names {
			items = append(items, keyCols[t])
		}
		if cols := numericCols[names[0]]; len(cols) > 0 {
			items = append(items, cols[0])
		}
		sel = strings.Join(items, ", ")
		if r.Intn(3) == 0 {
			tail = fmt.Sprintf(" ORDER BY %s", keyCols[names[0]])
			sel = fmt.Sprintf("TOP %d ", 1+r.Intn(50)) + sel
		}
	case 1:
		sel = "DISTINCT " + keyCols[names[r.Intn(len(names))]]
	default:
		groupTable := names[r.Intn(len(names))]
		key := keyCols[groupTable]
		aggTable := names[r.Intn(len(names))]
		aggCol := keyCols[aggTable]
		if cols := numericCols[aggTable]; len(cols) > 0 {
			aggCol = cols[r.Intn(len(cols))]
		}
		aggs := []string{
			fmt.Sprintf("COUNT(*) AS cnt"),
			fmt.Sprintf("SUM(%s) AS s", aggCol),
			fmt.Sprintf("MIN(%s) AS mn", aggCol),
		}
		sel = key + ", " + strings.Join(aggs[:1+r.Intn(3)], ", ")
		tail = " GROUP BY " + key
		if r.Intn(3) == 0 {
			tail += " HAVING COUNT(*) > 1"
		}
	}

	sql := "SELECT " + sel + " FROM " + strings.Join(names, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql + tail
}

func TestFuzzDistributedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz round skipped in -short mode")
	}
	db, err := OpenTPCH(0.001, 4, 1234)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(20260705))
	const trials = 250
	for i := 0; i < trials; i++ {
		sql := randomQuery(r)
		for _, opts := range []Options{{}, {Mode: ModeSerialBaseline}} {
			dist, err := db.Execute(sql, opts)
			if err != nil {
				t.Fatalf("trial %d (mode %v): distributed: %v\nSQL: %s", i, opts.Mode, err, sql)
			}
			ref, err := db.ExecuteSerial(sql)
			if err != nil {
				t.Fatalf("trial %d: serial: %v\nSQL: %s", i, err, sql)
			}
			// TOP over a non-unique order key is tie-nondeterministic
			// (any qualifying subset is a correct answer); compare counts.
			if strings.Contains(sql, "TOP ") {
				if len(dist.Rows) != len(ref.Rows) {
					t.Fatalf("trial %d: TOP count mismatch %d vs %d\nSQL: %s",
						i, len(dist.Rows), len(ref.Rows), sql)
				}
				continue
			}
			dc, rc := canon(dist, false), canon(ref, false)
			if len(dc) != len(rc) {
				t.Fatalf("trial %d (mode %v): row count %d vs %d\nSQL: %s",
					i, opts.Mode, len(dc), len(rc), sql)
			}
			for j := range dc {
				if !rowsEquivalent(dc[j], rc[j]) {
					t.Fatalf("trial %d (mode %v): row %d differs\ndist:   %s\nserial: %s\nSQL: %s",
						i, opts.Mode, j, dc[j], rc[j], sql)
				}
			}
		}
	}
}

func TestFuzzPlansAreDeterministic(t *testing.T) {
	db, err := OpenTPCH(0.001, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		sql := randomQuery(r)
		a, err := db.Optimize(sql, Options{})
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, sql)
		}
		b, err := db.Optimize(sql, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Distributed.Root.String() != b.Distributed.Root.String() {
			t.Fatalf("nondeterministic plan for %s", sql)
		}
	}
}

// TestPanicRegressionSeeds pins concrete queries that previously crashed
// the process with kind-mismatch panics (mixed-kind CASE results reaching
// ORDER BY / MIN, NOT over a non-boolean, and an IN list whose literals
// are incomparable with the column's histogram). Each must now either
// execute or surface a clean error — never panic — on both the
// distributed and the serial reference path.
func TestPanicRegressionSeeds(t *testing.T) {
	db, err := OpenTPCH(0.001, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		sql     string
		wantErr bool
	}{
		{"order-by-mixed-case", // ORDER BY over BIGINT/VARCHAR mix panicked in the sort comparator
			`SELECT CASE WHEN c_acctbal > 0 THEN 1 ELSE 'neg' END AS k FROM customer ORDER BY k`, true},
		{"min-mixed-case", // MIN over mixed kinds panicked in the aggregate comparator
			`SELECT MIN(CASE WHEN c_acctbal > 0 THEN 1 ELSE 'neg' END) AS m FROM customer`, true},
		{"not-non-boolean", // NOT over BIGINT panicked in Bool()
			`SELECT c_custkey FROM customer WHERE NOT c_custkey`, true},
		{"in-list-incomparable", // histogram estimation panicked comparing 'x' with BIGINT bounds
			`SELECT c_custkey FROM customer WHERE c_custkey IN (1, 'x', '1996-01-01')`, false},
	}
	run := func(t *testing.T, what string, f func() error) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s panicked: %v", what, r)
			}
		}()
		err := f()
		if c := t.Name(); err != nil {
			t.Logf("%s / %s: error (expected on mismatch cases): %v", c, what, err)
		}
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var distErr, serialErr error
			run(t, "distributed", func() error {
				_, distErr = db.Execute(c.sql, Options{})
				return distErr
			})
			run(t, "serial", func() error {
				_, serialErr = db.ExecuteSerial(c.sql)
				return serialErr
			})
			if c.wantErr && (distErr == nil || serialErr == nil) {
				t.Errorf("kind mismatch must surface as an error: dist=%v serial=%v", distErr, serialErr)
			}
			if !c.wantErr && (distErr != nil || serialErr != nil) {
				t.Errorf("query must execute cleanly: dist=%v serial=%v", distErr, serialErr)
			}
		})
	}
}

package dsql

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/memo"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/tpch"
)

var sharedShell *catalog.Shell

func shell(t *testing.T) *catalog.Shell {
	t.Helper()
	if sharedShell == nil {
		s, _, err := tpch.BuildShell(0.002, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		sharedShell = s
	}
	return sharedShell
}

func dsqlFor(t *testing.T, sql string, cfg core.Config) *Plan {
	t.Helper()
	s := shell(t)
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(s)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Optimize(s, norm, memo.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	data, err := memoxml.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := memoxml.Decode(data, s)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(s.Topology.ComputeNodes, cost.DefaultLambda())
	p, err := core.New(dec, s, model, cfg).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Generate(p, norm.OutputCols())
	if err != nil {
		t.Fatalf("generate %q: %v", sql, err)
	}
	return dp
}

// assertStepsParse re-parses every generated SQL string with the engine's
// own parser: DSQL text must stay inside the supported dialect, because
// compute nodes parse it themselves.
func assertStepsParse(t *testing.T, p *Plan) {
	t.Helper()
	for _, s := range p.Steps {
		if _, err := sqlparser.ParseSelect(s.SQL); err != nil {
			t.Errorf("step %d SQL does not parse: %v\nSQL: %s", s.ID, err, s.SQL)
		}
	}
}

func TestSection24TwoSteps(t *testing.T) {
	// The paper's §2.4 example compiles to two steps: a DMS operation
	// materializing one side, then the Return join.
	p := dsqlFor(t, `SELECT * FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`, core.Config{})
	if len(p.Steps) != 2 {
		t.Fatalf("want 2 steps, got %d:\n%s", len(p.Steps), p)
	}
	mv := p.Steps[0]
	if mv.Kind != StepMove || mv.MoveKind != cost.Shuffle {
		t.Fatalf("step 0 should shuffle: %+v", mv)
	}
	if !strings.Contains(mv.SQL, "[orders]") {
		t.Errorf("move source must scan orders:\n%s", mv.SQL)
	}
	if !strings.Contains(mv.SQL, "1000") {
		t.Errorf("filter must be inside the move source:\n%s", mv.SQL)
	}
	ret := p.Steps[1]
	if ret.Kind != StepReturn {
		t.Fatal("last step must return")
	}
	if !strings.Contains(ret.SQL, mv.Dest) {
		t.Errorf("return step must read the temp table:\n%s", ret.SQL)
	}
	if !strings.Contains(ret.SQL, "[customer]") {
		t.Errorf("return step must join customer:\n%s", ret.SQL)
	}
	assertStepsParse(t, p)
}

func TestCollocatedSingleStep(t *testing.T) {
	p := dsqlFor(t, `SELECT o_orderdate FROM orders, lineitem WHERE o_orderkey = l_orderkey`, core.Config{})
	if len(p.Steps) != 1 || p.Steps[0].Kind != StepReturn {
		t.Fatalf("collocated join is a single return step:\n%s", p)
	}
	assertStepsParse(t, p)
}

func TestQ20DSQLShape(t *testing.T) {
	q, _ := tpch.Get("q20")
	p := dsqlFor(t, q.SQL, core.Config{})
	// Figure 7: the plan is a short serial sequence ending in a Return;
	// it must include a broadcast step (part) and at least one shuffle.
	if len(p.Steps) < 3 {
		t.Fatalf("Q20 should need several steps:\n%s", p)
	}
	var kinds []cost.MoveKind
	for _, s := range p.Steps[:len(p.Steps)-1] {
		kinds = append(kinds, s.MoveKind)
	}
	hasBroadcast, hasShuffle := false, false
	for _, k := range kinds {
		if k == cost.Broadcast {
			hasBroadcast = true
		}
		if k == cost.Shuffle {
			hasShuffle = true
		}
	}
	if !hasBroadcast || !hasShuffle {
		t.Errorf("Q20 moves: %v; want broadcast + shuffle\n%s", kinds, p)
	}
	if p.Steps[len(p.Steps)-1].Kind != StepReturn {
		t.Error("final step must return")
	}
	// ORDER BY s_name → merge key on the first output column.
	if len(p.OrderBy) != 1 || p.OrderBy[0].Pos != 0 || p.OrderBy[0].Desc {
		t.Errorf("merge spec: %+v", p.OrderBy)
	}
	assertStepsParse(t, p)
}

func TestAggSplitSQL(t *testing.T) {
	// The wide aggregate makes the partial/final split profitable (partial
	// rows are much narrower than the input rows).
	p := dsqlFor(t, `SELECT o_custkey, COUNT(*) AS cnt, SUM(o_totalprice) AS total,
		MIN(o_orderdate) AS first_order FROM orders GROUP BY o_custkey`, core.Config{})
	// Expect: shuffle step whose source SQL contains a GROUP BY (the local
	// aggregate), then a return with the global SUM of partial counts.
	if len(p.Steps) != 2 {
		t.Fatalf("want 2 steps:\n%s", p)
	}
	if !strings.Contains(p.Steps[0].SQL, "GROUP BY") || !strings.Contains(p.Steps[0].SQL, "COUNT(*)") {
		t.Errorf("local aggregation missing from move source:\n%s", p.Steps[0].SQL)
	}
	if !strings.Contains(p.Steps[1].SQL, "SUM(") {
		t.Errorf("global phase must sum partial counts:\n%s", p.Steps[1].SQL)
	}
	assertStepsParse(t, p)
}

func TestTopOrderByMergeSpec(t *testing.T) {
	p := dsqlFor(t, `SELECT TOP 5 c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC`, core.Config{})
	if p.Top != 5 {
		t.Errorf("top: %d", p.Top)
	}
	if len(p.OrderBy) != 1 || p.OrderBy[0].Pos != 1 || !p.OrderBy[0].Desc {
		t.Errorf("merge keys: %+v", p.OrderBy)
	}
	assertStepsParse(t, p)
}

func TestAllQueriesGenerate(t *testing.T) {
	for _, q := range tpch.Queries() {
		p := dsqlFor(t, q.SQL, core.Config{})
		if p.Steps[len(p.Steps)-1].Kind != StepReturn {
			t.Errorf("%s: last step must return", q.Name)
		}
		assertStepsParse(t, p)
	}
}

func TestStepDestSchemas(t *testing.T) {
	p := dsqlFor(t, `SELECT * FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`, core.Config{})
	for _, s := range p.Steps {
		if s.Kind != StepMove {
			continue
		}
		if s.Dest == "" || len(s.DestCols) == 0 {
			t.Errorf("move step without destination schema: %+v", s)
		}
		for _, c := range s.DestCols {
			if !strings.HasPrefix(c.Name, "c") {
				t.Errorf("temp column naming: %q", c.Name)
			}
		}
		if s.MoveKind == cost.Shuffle && s.HashCol == "" {
			t.Error("shuffle needs a hash column")
		}
	}
}

func TestPlanRendering(t *testing.T) {
	p := dsqlFor(t, `SELECT * FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`, core.Config{})
	out := p.String()
	if !strings.Contains(out, "DSQL step 0") || !strings.Contains(out, "RETURN") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestContradictionPlanGenerates(t *testing.T) {
	p := dsqlFor(t, `SELECT c_name FROM customer WHERE c_acctbal > 10 AND c_acctbal < 5`, core.Config{})
	if len(p.Steps) == 0 {
		t.Fatal("empty plan")
	}
	assertStepsParse(t, p)
	if !strings.Contains(p.Steps[len(p.Steps)-1].SQL, "1 = 0") {
		t.Errorf("empty relation should render a false predicate:\n%s", p.Steps[len(p.Steps)-1].SQL)
	}
}

package difftest

import (
	"testing"

	"pdwqo"
)

// verifyVariants are the optimizer configurations swept by the static
// verifier: the full PDW search, the serial-baseline winner projection,
// and a budget-truncated seeded search whose early exit must still
// produce a sound plan.
func verifyVariants() []pdwqo.Options {
	return []pdwqo.Options{
		{Mode: pdwqo.ModeFull},
		{Mode: pdwqo.ModeSerialBaseline},
		{SeedCollocated: true, Budget: 50},
	}
}

// TestVerifyTPCH statically verifies every TPC-H plan at each cluster
// size: distribution soundness of the tree, dataflow soundness of the
// step sequence, and memo-side invariants, all re-derived independently
// of the optimizer's own rules.
func TestVerifyTPCH(t *testing.T) {
	nodes := []int{1, 2, 4, 8}
	if testing.Short() {
		nodes = []int{1, 4}
	}
	for _, n := range nodes {
		db := openAppliance(t, n)
		for _, c := range TPCHCases() {
			if err := Verify(db, c, verifyVariants()...); err != nil {
				t.Errorf("N=%d %v", n, err)
			}
		}
	}
}

// TestVerifyFuzz sweeps the seeded random corpus through the verifier.
func TestVerifyFuzz(t *testing.T) {
	count, nodes := 40, []int{1, 2, 4, 8}
	if testing.Short() {
		count, nodes = 10, []int{4}
	}
	for _, n := range nodes {
		db := openAppliance(t, n)
		for _, c := range FuzzCases(count, 20260805) {
			if err := Verify(db, c, verifyVariants()...); err != nil {
				t.Errorf("N=%d %v", n, err)
			}
		}
	}
}

// Package engine simulates the PDW appliance (paper §2.1–§2.4): a control
// node plus N compute nodes, each owning a node-local database instance and
// a DMS endpoint. DSQL plans execute exactly as described in the paper —
// steps run serially; each step ships a SQL *string* to the participating
// nodes, whose local engines parse and execute it themselves; DMS
// operations route the resulting rows into temp tables; the final step
// streams rows back to the client through the control node.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/exec"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/storage"
	"pdwqo/internal/types"
)

// Node is one appliance node: the control node or a compute node.
type Node struct {
	ID        int
	IsControl bool
	DB        *storage.DB
}

// StepMetric records one executed step for calibration and experiments.
type StepMetric struct {
	Move      cost.MoveKind
	IsMove    bool
	Rows      int64
	Bytes     int64
	HashedRow int64 // rows that went through hash routing
	// MaxNodeBytes is the largest per-destination-node byte share: under
	// the uniformity assumption it is ≈ Bytes/N for shuffles; skewed keys
	// push it toward Bytes (E13).
	MaxNodeBytes int64
	Duration     time.Duration
}

// Metrics accumulates execution measurements.
type Metrics struct {
	mu    sync.Mutex
	Steps []StepMetric
}

func (m *Metrics) add(s StepMetric) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Steps = append(m.Steps, s)
}

// TotalBytesMoved sums DMS bytes across steps.
func (m *Metrics) TotalBytesMoved() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.Steps {
		if s.IsMove {
			n += s.Bytes
		}
	}
	return n
}

// Appliance is the simulated PDW box.
type Appliance struct {
	Shell   *catalog.Shell
	Control *Node
	Compute []*Node
	Metrics Metrics
}

// New builds an appliance for the shell's topology with empty storage.
func New(shell *catalog.Shell) *Appliance {
	a := &Appliance{
		Shell:   shell,
		Control: &Node{ID: -1, IsControl: true, DB: storage.NewDB()},
	}
	for i := 0; i < shell.Topology.ComputeNodes; i++ {
		a.Compute = append(a.Compute, &Node{ID: i, DB: storage.NewDB()})
	}
	return a
}

// LoadTable places a table's rows per its declared distribution:
// replicated tables land on every compute node, hash tables are routed by
// the distribution column.
func (a *Appliance) LoadTable(name string, rows []types.Row) error {
	tbl := a.Shell.Table(name)
	if tbl == nil {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	for _, n := range a.Compute {
		if err := n.DB.Create(tbl.Name, tbl.Columns); err != nil {
			return err
		}
	}
	if tbl.Dist.Kind == catalog.DistReplicated {
		for _, n := range a.Compute {
			if err := n.DB.BulkInsert(tbl.Name, rows); err != nil {
				return err
			}
		}
		return nil
	}
	ci := tbl.ColumnIndex(tbl.Dist.Column)
	buckets := make([][]types.Row, len(a.Compute))
	for _, r := range rows {
		n := int(types.Hash(r[ci]) % uint64(len(a.Compute)))
		buckets[n] = append(buckets[n], r)
	}
	for i, n := range a.Compute {
		if err := n.DB.BulkInsert(tbl.Name, buckets[i]); err != nil {
			return err
		}
	}
	return nil
}

// Result is the client-visible query result.
type Result struct {
	Cols []algebra.ColumnMeta
	Rows []types.Row
}

// Execute runs a DSQL plan serially, step by step (paper §2.4: "query
// plans are executed serially, one step at a time", each step parallel
// across nodes).
func (a *Appliance) Execute(p *dsql.Plan) (*Result, error) {
	// Session catalog: shell tables plus temp tables registered as steps
	// create them.
	session := catalog.NewShell(a.Shell.Topology.ComputeNodes)
	for _, t := range a.Shell.Tables() {
		if err := session.AddTable(t); err != nil {
			return nil, err
		}
	}
	var tempNames []string
	defer func() {
		for _, name := range tempNames {
			a.Control.DB.Drop(name)
			for _, n := range a.Compute {
				n.DB.Drop(name)
			}
		}
	}()

	for _, step := range p.Steps {
		start := time.Now()
		tree, err := a.compile(step.SQL, session)
		if err != nil {
			return nil, fmt.Errorf("engine: step %d: %w", step.ID, err)
		}
		switch step.Kind {
		case dsql.StepMove:
			if err := a.executeMove(step, tree, session, &tempNames, start); err != nil {
				return nil, fmt.Errorf("engine: step %d: %w", step.ID, err)
			}
		case dsql.StepReturn:
			rel, err := a.executeReturn(step, tree, p, start)
			if err != nil {
				return nil, fmt.Errorf("engine: step %d: %w", step.ID, err)
			}
			return rel, nil
		}
	}
	return nil, fmt.Errorf("engine: plan has no return step")
}

// compile parses, binds and normalizes a DSQL step's SQL text — the role
// of each node's local SQL instance compilation.
func (a *Appliance) compile(sql string, session *catalog.Shell) (*algebra.Tree, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	b := algebra.NewBinder(session)
	tree, err := b.Bind(sel)
	if err != nil {
		return nil, err
	}
	return normalize.New(b).Normalize(tree)
}

// sourceNodes picks the nodes that run a step's SQL.
func (a *Appliance) sourceNodes(step dsql.Step) []*Node {
	switch {
	case step.Kind == dsql.StepMove && step.MoveKind == cost.ControlNodeMove:
		return []*Node{a.Control}
	case step.Kind == dsql.StepMove &&
		(step.MoveKind == cost.ReplicatedBroadcast || step.MoveKind == cost.RemoteCopySingle):
		// A replicated (or single-compute-node) source is read once.
		if step.Where == core.DistSingle {
			return []*Node{a.Control}
		}
		return []*Node{a.Compute[0]}
	case step.Where == core.DistSingle:
		return []*Node{a.Control}
	case step.Where == core.DistReplicated && step.Kind == dsql.StepReturn:
		return []*Node{a.Compute[0]}
	case step.Where == core.DistReplicated && step.Kind == dsql.StepMove && step.MoveKind != cost.Trim:
		return []*Node{a.Compute[0]}
	default:
		return a.Compute
	}
}

// runOnNodes executes the compiled tree on each node in parallel.
func (a *Appliance) runOnNodes(tree *algebra.Tree, nodes []*Node) ([]*exec.Relation, error) {
	rels := make([]*exec.Relation, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			src := func(name string) ([]types.Row, []string, error) {
				t := n.DB.Table(name)
				if t == nil {
					return nil, nil, fmt.Errorf("node %d: no table %q", n.ID, name)
				}
				names := make([]string, len(t.Cols))
				for j, c := range t.Cols {
					names[j] = c.Name
				}
				return t.Rows, names, nil
			}
			rels[i], errs[i] = exec.Run(tree, src)
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rels, nil
}

// executeMove runs the step SQL on the source nodes and routes rows per
// the DMS operation into the destination temp table.
func (a *Appliance) executeMove(step dsql.Step, tree *algebra.Tree, session *catalog.Shell, tempNames *[]string, start time.Time) error {
	sources := a.sourceNodes(step)
	rels, err := a.runOnNodes(tree, sources)
	if err != nil {
		return err
	}
	// Destination setup.
	destNodes, destDist := a.destFor(step)
	for _, n := range destNodes {
		if err := n.DB.Create(step.Dest, step.DestCols); err != nil {
			return err
		}
	}
	*tempNames = append(*tempNames, step.Dest)
	if err := session.AddTable(&catalog.Table{
		Name:    step.Dest,
		Columns: step.DestCols,
		Dist:    destDist,
	}); err != nil {
		return err
	}

	hashPos := -1
	if step.HashCol != "" {
		for i, c := range step.DestCols {
			if c.Name == step.HashCol {
				hashPos = i
			}
		}
		if hashPos < 0 {
			return fmt.Errorf("hash column %q missing from destination", step.HashCol)
		}
	}

	var rows, hashed, bytes, maxNode int64
	route := func(dest *Node, rs []types.Row) error {
		var b int64
		for _, r := range rs {
			b += int64(r.Width())
		}
		bytes += b
		if b > maxNode {
			maxNode = b
		}
		rows += int64(len(rs))
		return dest.DB.BulkInsert(step.Dest, rs)
	}

	switch step.MoveKind {
	case cost.Shuffle:
		buckets := make([][]types.Row, len(a.Compute))
		for si, rel := range rels {
			_ = si
			for _, r := range rel.Rows {
				hashed++
				n := 0
				if !r[hashPos].IsNull() {
					n = int(types.Hash(r[hashPos]) % uint64(len(a.Compute)))
				}
				buckets[n] = append(buckets[n], r)
			}
		}
		for i, n := range a.Compute {
			if err := route(n, buckets[i]); err != nil {
				return err
			}
		}

	case cost.Trim:
		// Node-local: each node keeps only rows it is responsible for.
		if len(sources) != len(a.Compute) {
			return fmt.Errorf("trim requires all compute nodes as sources")
		}
		for si, rel := range rels {
			var keep []types.Row
			for _, r := range rel.Rows {
				hashed++
				n := 0
				if !r[hashPos].IsNull() {
					n = int(types.Hash(r[hashPos]) % uint64(len(a.Compute)))
				}
				if n == si {
					keep = append(keep, r)
				}
			}
			if err := route(a.Compute[si], keep); err != nil {
				return err
			}
		}

	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		var all []types.Row
		for _, rel := range rels {
			all = append(all, rel.Rows...)
		}
		for _, n := range a.Compute {
			if err := route(n, all); err != nil {
				return err
			}
		}

	case cost.PartitionMove, cost.RemoteCopySingle:
		var all []types.Row
		for _, rel := range rels {
			all = append(all, rel.Rows...)
		}
		if err := route(a.Control, all); err != nil {
			return err
		}

	default:
		return fmt.Errorf("unsupported move kind %v", step.MoveKind)
	}

	a.Metrics.add(StepMetric{
		Move: step.MoveKind, IsMove: true,
		Rows: rows, Bytes: bytes, HashedRow: hashed,
		MaxNodeBytes: maxNode,
		Duration:     time.Since(start),
	})
	return nil
}

// destFor returns the nodes receiving a move's rows and the temp table's
// catalog placement.
func (a *Appliance) destFor(step dsql.Step) ([]*Node, catalog.Distribution) {
	switch step.MoveKind {
	case cost.Shuffle, cost.Trim:
		return a.Compute, catalog.Distribution{Kind: catalog.DistHash, Column: step.HashCol}
	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		return a.Compute, catalog.Distribution{Kind: catalog.DistReplicated}
	default: // PartitionMove, RemoteCopySingle
		return append([]*Node{}, a.Control), catalog.Distribution{Kind: catalog.DistReplicated}
	}
}

// executeReturn runs the final SQL and assembles the client result,
// merging per the plan's order spec and applying TOP.
func (a *Appliance) executeReturn(step dsql.Step, tree *algebra.Tree, p *dsql.Plan, start time.Time) (*Result, error) {
	sources := a.sourceNodes(step)
	rels, err := a.runOnNodes(tree, sources)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: p.OutCols}
	var bytes int64
	for _, rel := range rels {
		for _, r := range rel.Rows {
			bytes += int64(r.Width())
		}
		out.Rows = append(out.Rows, rel.Rows...)
	}
	if len(p.OrderBy) > 0 {
		keys := p.OrderBy
		sort.SliceStable(out.Rows, func(i, j int) bool {
			for _, k := range keys {
				c := types.Compare(out.Rows[i][k.Pos], out.Rows[j][k.Pos])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if p.Top > 0 && int64(len(out.Rows)) > p.Top {
		out.Rows = out.Rows[:p.Top]
	}
	a.Metrics.add(StepMetric{
		Rows: int64(len(out.Rows)), Bytes: bytes,
		Duration: time.Since(start),
	})
	return out, nil
}

package catalog

import (
	"testing"

	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

func ordersTable() *Table {
	return &Table{
		Name: "Orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: types.KindInt},
			{Name: "o_custkey", Type: types.KindInt},
			{Name: "o_totalprice", Type: types.KindFloat},
			{Name: "o_orderdate", Type: types.KindDate},
		},
		PrimaryKey: []string{"o_orderkey"},
		Dist:       Distribution{Kind: DistHash, Column: "o_orderkey"},
	}
}

func TestAddAndLookup(t *testing.T) {
	s := NewShell(8)
	if s.Topology.ComputeNodes != 8 {
		t.Fatal("topology")
	}
	if err := s.AddTable(ordersTable()); err != nil {
		t.Fatal(err)
	}
	if s.Table("ORDERS") == nil || s.Table("orders") == nil {
		t.Error("lookup must be case-insensitive")
	}
	if s.Table("nope") != nil {
		t.Error("unknown table must be nil")
	}
	if err := s.AddTable(ordersTable()); err == nil {
		t.Error("duplicate table must error")
	}
}

func TestValidation(t *testing.T) {
	s := NewShell(2)
	if err := s.AddTable(&Table{Name: ""}); err == nil {
		t.Error("empty name")
	}
	if err := s.AddTable(&Table{Name: "t"}); err == nil {
		t.Error("no columns")
	}
	if err := s.AddTable(&Table{Name: "t", Columns: []Column{{Name: "a"}, {Name: "A"}}}); err == nil {
		t.Error("duplicate columns")
	}
	if err := s.AddTable(&Table{
		Name: "t", Columns: []Column{{Name: "a"}},
		Dist: Distribution{Kind: DistHash, Column: "b"},
	}); err == nil {
		t.Error("bad distribution column")
	}
	if err := s.AddTable(&Table{
		Name: "t", Columns: []Column{{Name: "a"}},
		Dist: Distribution{Kind: DistReplicated, Column: "a"},
	}); err == nil {
		t.Error("replicated with distribution column")
	}
	if err := s.AddTable(&Table{
		Name: "t", Columns: []Column{{Name: "a"}}, PrimaryKey: []string{"z"},
		Dist: Distribution{Kind: DistReplicated},
	}); err == nil {
		t.Error("bad primary key column")
	}
}

func TestColumnHelpers(t *testing.T) {
	tbl := ordersTable()
	if tbl.ColumnIndex("O_CUSTKEY") != 1 {
		t.Error("case-insensitive column index")
	}
	if tbl.ColumnIndex("missing") != -1 {
		t.Error("missing column index")
	}
	if c := tbl.Column("o_orderdate"); c == nil || c.Type != types.KindDate {
		t.Error("column lookup")
	}
	if !tbl.IsPrimaryKey([]string{"extra", "O_ORDERKEY"}) {
		t.Error("superset covers PK")
	}
	if tbl.IsPrimaryKey([]string{"o_custkey"}) {
		t.Error("non-key columns are not a PK")
	}
	if (&Table{Name: "x", Columns: []Column{{Name: "a"}}}).IsPrimaryKey([]string{"a"}) {
		t.Error("no declared PK means false")
	}
}

func TestStatsAttachment(t *testing.T) {
	s := NewShell(4)
	tbl := ordersTable()
	if err := s.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 0 {
		t.Error("no stats yet")
	}
	st, err := stats.BuildTable(map[string][]types.Value{
		"o_orderkey": {types.NewInt(1), types.NewInt(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetStats("orders", st); err != nil {
		t.Fatal(err)
	}
	if s.Table("orders").RowCount() != 2 {
		t.Error("rowcount from stats")
	}
	// The refresh is copy-on-write: a *Table resolved before SetStats is a
	// stable snapshot, so compilations in flight during a statistics
	// refresh keep reading the metadata they started with.
	if tbl.RowCount() != 0 {
		t.Error("previously resolved table must keep its stats snapshot")
	}
	if err := s.SetStats("missing", st); err == nil {
		t.Error("unknown table must error")
	}
}

func TestAvgRowWidthFallback(t *testing.T) {
	tbl := ordersTable()
	// No stats: 8 + 8 + 8 + 4 = 28 bytes.
	if w := tbl.AvgRowWidth(); w != 28 {
		t.Errorf("fallback width = %v", w)
	}
}

func TestTablesSorted(t *testing.T) {
	s := NewShell(2)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		tbl := &Table{
			Name:    n,
			Columns: []Column{{Name: "a", Type: types.KindInt}},
			Dist:    Distribution{Kind: DistReplicated},
		}
		if err := s.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Tables()
	if len(got) != 3 || got[0].Name != "alpha" || got[2].Name != "zeta" {
		t.Errorf("tables not sorted: %v", got)
	}
}

func TestDistributionString(t *testing.T) {
	if (Distribution{Kind: DistHash, Column: "k"}).String() != "HASH(k)" {
		t.Error("hash string")
	}
	if (Distribution{Kind: DistReplicated}).String() != "REPLICATE" {
		t.Error("replicate string")
	}
}

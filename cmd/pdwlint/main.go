// Command pdwlint runs the project's static-analysis suite over the
// module: comparechecked, spanclose, lockdiscipline, sentinelwrap,
// baretruthy, ctxflow and lostcast.
// It loads packages with `go list -export -deps -json` (no network, no
// external analysis dependencies) and prints findings as
// file:line:col: message (analyzer), exiting 1 when any finding
// survives the //pdwlint:allow directives.
//
// Usage:
//
//	pdwlint [packages]
//
// With no arguments it analyzes ./... from the current directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/baretruthy"
	"pdwqo/internal/analysis/passes/comparechecked"
	"pdwqo/internal/analysis/passes/ctxflow"
	"pdwqo/internal/analysis/passes/lockdiscipline"
	"pdwqo/internal/analysis/passes/lostcast"
	"pdwqo/internal/analysis/passes/sentinelwrap"
	"pdwqo/internal/analysis/passes/spanclose"
)

var analyzers = []*analysis.Analyzer{
	baretruthy.Analyzer,
	ctxflow.Analyzer,
	lostcast.Analyzer,
	comparechecked.Analyzer,
	spanclose.Analyzer,
	lockdiscipline.Analyzer,
	sentinelwrap.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pdwlint [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdwlint: %v\n", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(analyzers, pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdwlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "pdwlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

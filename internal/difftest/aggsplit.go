package difftest

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pdwqo"
	"pdwqo/internal/types"
)

// AggSplitDiff certifies the metamorphic equivalence contract of the
// partial-aggregate split for one case: the same query compiled with the
// split enumerated (the default) and force-disabled (DisableAggSplit)
// must produce identical result relations. Both compilations run under
// the static plan verifier, so every emitted plan is invariant-checked
// as a side effect of the sweep.
//
// The two winning plans legitimately differ, which relaxes two corners
// of the serial-vs-parallel contract:
//
//   - Row order: the engine yields groups in first-seen input order, and
//     the two plans feed their aggregations in different orders. Queries
//     with a final ORDER BY must still agree row-for-row; the rest
//     compare as a sorted multiset.
//   - Float low bits: splitting reassociates SUM (per-node partial sums
//     merged afterwards), so IEEE addition order changes. Floats render
//     at 12 significant digits — wide enough that any real aggregation
//     bug shows, tight enough to absorb reassociation error — and every
//     other kind must match byte-for-byte.
func AggSplitDiff(db *pdwqo.DB, c Case, par int) error {
	split, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par, Verify: true})
	if err != nil {
		return fmt.Errorf("%s: optimize with split: %w", c.Name, err)
	}
	unsplit, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par, DisableAggSplit: true, Verify: true})
	if err != nil {
		return fmt.Errorf("%s: optimize without split: %w", c.Name, err)
	}
	db.SetParallelism(par)
	sres, err := db.ExecutePlan(split)
	if err != nil {
		return fmt.Errorf("%s: execute with split: %w", c.Name, err)
	}
	ures, err := db.ExecutePlan(unsplit)
	if err != nil {
		return fmt.Errorf("%s: execute without split: %w", c.Name, err)
	}
	return diffRelations(c, sres, ures)
}

// AggSplitChaos runs the chaos variant of the metamorphic contract: the
// force-disabled plan executes fault-free as the reference, then the
// split plan executes under a seeded random fault plan. Either the
// retries absorb every fault and the relations agree, or the failure is
// a clean typed *pdwqo.StepError — and no temp table survives on any
// node in either outcome.
func AggSplitChaos(db *pdwqo.DB, c Case, par int, seed int64, maxRetries int) error {
	a := db.Appliance()
	prevBackoff := a.RetryBackoff
	defer func() {
		db.SetFaultPlan(nil)
		db.SetResilience(0, 0)
		a.RetryBackoff = prevBackoff
	}()

	// Fault-free reference through the unsplit arm.
	db.SetFaultPlan(nil)
	db.SetResilience(0, 0)
	db.SetParallelism(par)
	unsplit, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par, DisableAggSplit: true})
	if err != nil {
		return fmt.Errorf("%s: optimize without split: %w", c.Name, err)
	}
	ref, err := db.ExecutePlan(unsplit)
	if err != nil {
		return fmt.Errorf("%s: fault-free unsplit execute: %w", c.Name, err)
	}

	split, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par})
	if err != nil {
		return fmt.Errorf("%s: optimize with split: %w", c.Name, err)
	}
	faults := pdwqo.RandomFaultPlan(seed, len(split.DSQL.Steps), a.Shell.Topology.ComputeNodes)
	db.SetFaultPlan(faults)
	db.SetResilience(maxRetries, 0)
	a.RetryBackoff = 50 * time.Microsecond

	res, err := runRecovered(db, split)

	if leaks := leakedTables(db); len(leaks) > 0 {
		return fmt.Errorf("%s: leaked tables after chaos run (seed %d): %v", c.Name, seed, leaks)
	}
	if err != nil {
		var se *pdwqo.StepError
		if !errors.As(err, &se) {
			return fmt.Errorf("%s: chaos failure (seed %d) is not a typed StepError: %w", c.Name, seed, err)
		}
		return nil // clean typed failure is an accepted outcome
	}
	if derr := diffRelations(c, res, ref); derr != nil {
		return fmt.Errorf("chaos (seed %d, %d faults fired, retries %d): %w",
			seed, faults.Fired(), maxRetries, derr)
	}
	return nil
}

// diffRelations compares the split and unsplit result relations under
// the metamorphic contract described on AggSplitDiff.
func diffRelations(c Case, split, unsplit *pdwqo.Result) error {
	if sc, uc := strings.Join(split.Columns, "|"), strings.Join(unsplit.Columns, "|"); sc != uc {
		return fmt.Errorf("%s: result columns diverged: split %q, unsplit %q", c.Name, sc, uc)
	}
	if len(split.Rows) != len(unsplit.Rows) {
		return fmt.Errorf("%s: row count diverged: split %d, unsplit %d",
			c.Name, len(split.Rows), len(unsplit.Rows))
	}
	s, u := canonRelation(split.Rows), canonRelation(unsplit.Rows)
	if !hasOrderBy(c.SQL) {
		sort.Strings(s)
		sort.Strings(u)
	}
	for i := range s {
		if s[i] != u[i] {
			return fmt.Errorf("%s: row %d diverged:\n  split:   %s\n  unsplit: %s", c.Name, i, s[i], u[i])
		}
	}
	return nil
}

// canonRelation renders every row with floats at 12 significant digits
// and all other kinds exactly.
func canonRelation(rows []pdwqo.Row) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v.Kind() == types.KindFloat {
				parts[j] = strconv.FormatFloat(v.Float(), 'g', 12, 64)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// hasOrderBy reports whether the query imposes a result order. The
// corpus never nests ORDER BY in subqueries, so a substring probe is
// exact here.
func hasOrderBy(sql string) bool {
	return strings.Contains(strings.ToUpper(sql), "ORDER BY")
}

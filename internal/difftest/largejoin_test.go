package difftest

import (
	"strings"
	"testing"
	"time"

	"pdwqo"
	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/planverify"
	"pdwqo/internal/qgen"
)

// genQuery materializes one corpus spec, failing the test on any
// generator error so sweeps stay terse.
func genQuery(t *testing.T, spec qgen.Spec) *qgen.Query {
	t.Helper()
	q, err := qgen.Generate(spec)
	if err != nil {
		t.Fatalf("%s: generate: %v", spec.Name(), err)
	}
	return q
}

func openQGen(t *testing.T, q *qgen.Query) *pdwqo.DB {
	t.Helper()
	db, err := OpenQGen(q)
	if err != nil {
		t.Fatalf("%s: open: %v", q.Name, err)
	}
	return db
}

// TestLargeJoinGreedyVsExhaustive is the metamorphic certification of
// the greedy regime: over every small-corpus query (where exhaustive
// search is feasible) the forced-greedy plan must return byte-identical
// results, and the plan-cost penalty must stay within the 2.0x geomean
// gate the issue sets.
func TestLargeJoinGreedyVsExhaustive(t *testing.T) {
	specs := qgen.SmallCorpus()
	pars := []int{1, 4}
	if testing.Short() {
		pars = []int{4}
	}
	var ratios []float64
	for _, spec := range specs {
		q := genQuery(t, spec)
		db := openQGen(t, q)
		for _, par := range pars {
			ratio, err := LargeJoinDiff(db, q, par)
			if err != nil {
				t.Errorf("par=%d: %v", par, err)
				continue
			}
			if par == pars[0] {
				ratios = append(ratios, ratio)
				t.Logf("%s: plan-cost ratio %.3f", q.Name, ratio)
			}
		}
	}
	if t.Failed() {
		return
	}
	geo, worst := cost.RatioSummary(ratios)
	t.Logf("greedy/exhaustive plan-cost ratio over %d queries: geomean %.3f, worst %.3f", len(ratios), geo, worst)
	if geo > 2.0 {
		t.Errorf("greedy plan-cost geomean %.3f exceeds the 2.0x gate (worst %.3f)", geo, worst)
	}
}

// TestLargeJoinStressOptimize drives the large corpus — up to the
// 100-relation clique — through a budgeted optimize with the static
// verifier on. Every query must compile planverify-green; whichever
// regime the budget picks, greedy plans must also satisfy the
// structural guarantees (each relation scanned once, no cross joins).
func TestLargeJoinStressOptimize(t *testing.T) {
	specs := qgen.LargeCorpus()
	if testing.Short() {
		var trimmed []qgen.Spec
		for _, s := range specs {
			if s.Relations <= 24 || (s.Topology == qgen.Clique && s.Relations == 100) {
				trimmed = append(trimmed, s)
			}
		}
		specs = trimmed
	}
	for _, spec := range specs {
		q := genQuery(t, spec)
		db := openQGen(t, q)
		start := time.Now()
		qp, err := db.Optimize(q.SQL, pdwqo.Options{SearchBudget: 20000, Verify: true})
		if err != nil {
			t.Errorf("%s: optimize: %v", q.Name, err)
			continue
		}
		elapsed := time.Since(start)
		t.Logf("%s: regime=%-10s cost=%12.1f in %s", q.Name, qp.Regime, qp.Cost(), elapsed.Round(time.Millisecond))
		if qp.Regime != "greedy" && qp.Regime != "exhaustive" {
			t.Errorf("%s: budgeted optimize reported regime %q", q.Name, qp.Regime)
		}
		if qp.Regime == "greedy" {
			if err := GreedyPlanShape(q, qp); err != nil {
				t.Error(err)
			}
		}
		// The issue's acceptance bound is <5s for the 100-relation clique;
		// the race detector inflates wall time severalfold, so the test
		// enforces a slack bound and the tight one is recorded in
		// EXPERIMENTS.md E22 from an instrumented run.
		if spec.Relations == 100 && elapsed > 30*time.Second {
			t.Errorf("%s: optimize took %s, want well under 30s", q.Name, elapsed)
		}
	}
}

// greedyPlan compiles one generated query under a forced greedy
// fallback on a private appliance, so mutations cannot poison shared
// state.
func greedyPlan(t *testing.T, spec qgen.Spec) (*qgen.Query, *pdwqo.QueryPlan, *pdwqo.DB) {
	t.Helper()
	q := genQuery(t, spec)
	db := openQGen(t, q)
	qp, err := db.Optimize(q.SQL, pdwqo.Options{SearchBudget: 1, Verify: true})
	if err != nil {
		t.Fatalf("%s: greedy optimize: %v", q.Name, err)
	}
	if qp.Regime != "greedy" {
		t.Fatalf("%s: regime %q, want greedy", q.Name, qp.Regime)
	}
	return q, qp, db
}

// mutationSpecs are the specs the mutation harness searches for plans
// with the structure each mutation needs (chained moves, join
// enforcers). Star and clique shapes at 8–10 relations reliably move
// data between joins.
func mutationSpecs() []qgen.Spec {
	var out []qgen.Spec
	for _, s := range qgen.SmallCorpus() {
		if s.Relations >= 8 {
			out = append(out, s)
		}
	}
	return out
}

// TestLargeJoinMutationSwapMoveDest runs the planverify mutation-fixture
// harness over greedy-regime plans: swapping a producer move's
// destination with its consumer's must surface a use-before-def.
func TestLargeJoinMutationSwapMoveDest(t *testing.T) {
	for _, spec := range mutationSpecs() {
		q, qp, db := greedyPlan(t, spec)
		steps := qp.DSQL.Steps
		i, j, ok := findChainedMoves(steps)
		if !ok {
			continue
		}
		steps[i].Dest, steps[j].Dest = steps[j].Dest, steps[i].Dest
		rep := planverify.Check(planverify.Artifacts{Plan: qp.Distributed, DSQL: qp.DSQL, Shell: db.Shell()})
		if !rep.Has(planverify.CodeTempUseBeforeDef) {
			t.Fatalf("%s: swapped move destinations not caught: %v", q.Name, rep.Violations)
		}
		return
	}
	t.Fatal("no greedy plan with chained move steps")
}

// findChainedMoves locates move steps i < j where step j's SQL reads
// step i's destination temp (the planverify fixture harness pattern).
func findChainedMoves(steps []dsql.Step) (int, int, bool) {
	for i := range steps {
		if steps[i].Kind != dsql.StepMove || steps[i].Dest == "" {
			continue
		}
		for j := i + 1; j < len(steps); j++ {
			if steps[j].Kind == dsql.StepMove &&
				strings.Contains(steps[j].SQL, "[tempdb].["+steps[i].Dest+"]") {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// TestLargeJoinMutationDanglingTemp rewrites one temp reference in a
// greedy plan's DSQL to a name no step produces.
func TestLargeJoinMutationDanglingTemp(t *testing.T) {
	for _, spec := range mutationSpecs() {
		q, qp, db := greedyPlan(t, spec)
		mutated := false
		for k := range qp.DSQL.Steps {
			s := &qp.DSQL.Steps[k]
			if idx := strings.Index(s.SQL, "[tempdb].[TEMP_ID_"); idx >= 0 {
				end := strings.IndexByte(s.SQL[idx:], ']') + idx
				s.SQL = s.SQL[:idx] + "[tempdb].[TEMP_ID_999" + s.SQL[end:]
				mutated = true
				break
			}
		}
		if !mutated {
			continue
		}
		rep := planverify.Check(planverify.Artifacts{Plan: qp.Distributed, DSQL: qp.DSQL, Shell: db.Shell()})
		if !rep.Has(planverify.CodeTempUnknown) {
			t.Fatalf("%s: dangling temp reference not caught: %v", q.Name, rep.Violations)
		}
		return
	}
	t.Fatal("no greedy plan referencing a temp table")
}

// TestLargeJoinMutationDropEnforcer splices a movement enforcer out
// from under a join in a greedy plan; CheckPlan must report the join as
// no longer collocated. Only CheckPlan runs — the splice also perturbs
// the tree/step movement cross-check, which would drown the signal.
func TestLargeJoinMutationDropEnforcer(t *testing.T) {
	for _, spec := range mutationSpecs() {
		_, qp, _ := greedyPlan(t, spec)
		var joins []*core.Option
		seen := map[*core.Option]bool{}
		var walk func(o *core.Option)
		walk = func(o *core.Option) {
			if o == nil || seen[o] {
				return
			}
			seen[o] = true
			if _, isJoin := o.Op.(*algebra.Join); isJoin {
				joins = append(joins, o)
			}
			for _, in := range o.Inputs {
				walk(in)
			}
		}
		walk(qp.Distributed.Root)
		for _, j := range joins {
			for idx, in := range j.Inputs {
				if in.Move == nil {
					continue
				}
				j.Inputs[idx] = in.Inputs[0] // drop the enforcer
				vs := planverify.CheckPlan(qp.Distributed)
				j.Inputs[idx] = in // restore for the next candidate
				for _, v := range vs {
					if v.Code == planverify.CodeJoinNotCollocated {
						return
					}
				}
			}
		}
	}
	t.Fatal("no dropped enforcer produced a collocation violation")
}

// Command pdwserver runs the PDW query server: a TPC-H appliance behind
// the wire protocol of internal/server, with a shared plan cache,
// admission control, and per-session prepared statements.
//
// Usage:
//
//	pdwserver [-addr 127.0.0.1:7420] [-sf 0.01] [-nodes 8] [-seed 42]
//	          [-max-concurrent 8] [-max-queue 64] [-queue-timeout 0]
//	          [-cache 4096] [-parallel 0] [-retries 0] [-step-timeout 0]
//
// The server prints the bound address on stdout once it is accepting
// connections and runs until SIGINT/SIGTERM, then drains sessions and
// exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdwqo"
	"pdwqo/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7420", "listen address")
		sf            = flag.Float64("sf", 0.01, "TPC-H scale factor")
		nodes         = flag.Int("nodes", 8, "compute nodes")
		seed          = flag.Int64("seed", 42, "generator seed")
		maxConcurrent = flag.Int("max-concurrent", 8, "concurrent query executions")
		maxQueue      = flag.Int("max-queue", 64, "admission queue length")
		queueTimeout  = flag.Duration("queue-timeout", 0, "max admission wait (0 = unbounded)")
		batchRows     = flag.Int("batch-rows", 256, "rows per result frame")
		cache         = flag.Int("cache", 4096, "plan cache capacity (negative disables)")
		parallel      = flag.Int("parallel", 0, "per-node execution parallelism (0 = GOMAXPROCS)")
		retries       = flag.Int("retries", 0, "per-step retries for idempotent steps")
		stepTimeout   = flag.Duration("step-timeout", 0, "per-step attempt timeout (0 = unbounded)")
	)
	flag.Parse()

	db, err := pdwqo.OpenTPCH(*sf, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	db.SetParallelism(*parallel)
	db.SetResilience(*retries, *stepTimeout)
	if *cache >= 0 {
		db.SetPlanCache(*cache)
	}

	srv := server.New(db, server.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
		BatchRows:     *batchRows,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pdwserver: listening on %s (sf=%g nodes=%d concurrent=%d queue=%d)\n",
		bound, *sf, *nodes, *maxConcurrent, *maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pdwserver: draining sessions")
	start := time.Now()
	srv.Shutdown()
	st := srv.Stats()
	fmt.Printf("pdwserver: stopped after %v — %d sessions, %d queries, admission %+v\n",
		time.Since(start).Round(time.Millisecond), st.Sessions, st.Queries, st.Admission)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdwserver:", err)
	os.Exit(1)
}

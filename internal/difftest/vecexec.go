package difftest

// Vectorized-vs-row metamorphic arm: the vectorized node-local executor
// must be observationally indistinguishable from the row-at-a-time
// executor behind the DSQL step contract. Plan selection is engine
// independent, so one optimized plan runs under both engines and the
// client-visible relations must match byte for byte. Errors must agree in
// kind (both engines fail, or neither); exact error *text* is compared
// only when both fail, modulo the documented multi-error corner (a batch
// kernel may surface a different row's error than the row engine when one
// batch holds several independently erroring rows).

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"pdwqo"
)

// VecDiff optimizes one case once and executes the plan under the
// vectorized engine and the row engine, asserting byte-identical results.
// The DB is restored to the vectorized default before returning.
func VecDiff(db *pdwqo.DB, c Case, par int) error {
	defer db.SetRowExec(false)
	plan, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par})
	if err != nil {
		return fmt.Errorf("%s: optimize: %w", c.Name, err)
	}
	db.SetParallelism(par)
	db.SetRowExec(false)
	vres, verr := db.ExecutePlan(plan)
	db.SetRowExec(true)
	rres, rerr := db.ExecutePlan(plan)
	if (verr == nil) != (rerr == nil) {
		return fmt.Errorf("%s: engines diverged on failure: vectorized err=%v, row err=%v",
			c.Name, verr, rerr)
	}
	if verr != nil {
		// Both failed; accept it as agreement (error choice inside one
		// batch is the documented divergence corner).
		return nil
	}
	return diffEngines(c.Name, rres, vres)
}

// VecChaos certifies the vectorized engine's robustness contract: execute
// the case fault-free on the row engine as reference, then run the
// vectorized engine under a seeded random fault plan with retries, and
// assert byte-identical recovery (or a clean typed StepError) with no
// leaked temp tables. This is the vectorized mirror of Chaos — the
// reference deliberately crosses engines so a fault-path divergence in
// either engine shows up as a diff.
func VecChaos(db *pdwqo.DB, c Case, par int, seed int64, maxRetries int) error {
	a := db.Appliance()
	prevBackoff := a.RetryBackoff
	defer func() {
		db.SetFaultPlan(nil)
		db.SetResilience(0, 0)
		db.SetRowExec(false)
		a.RetryBackoff = prevBackoff
	}()

	// Fault-free row-engine reference.
	db.SetFaultPlan(nil)
	db.SetResilience(0, 0)
	db.SetParallelism(1)
	db.SetRowExec(true)
	plan, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: 1})
	if err != nil {
		return fmt.Errorf("%s: optimize: %w", c.Name, err)
	}
	ref, err := db.ExecutePlan(plan)
	if err != nil {
		return fmt.Errorf("%s: fault-free row reference execute: %w", c.Name, err)
	}

	// Vectorized chaos run: same plan, seeded faults, parallel fan-out.
	db.SetRowExec(false)
	faults := pdwqo.RandomFaultPlan(seed, len(plan.DSQL.Steps), a.Shell.Topology.ComputeNodes)
	db.SetFaultPlan(faults)
	db.SetResilience(maxRetries, 0)
	db.SetParallelism(par)
	a.RetryBackoff = 50 * time.Microsecond

	res, err := runRecovered(db, plan)

	if leaks := leakedTables(db); len(leaks) > 0 {
		return fmt.Errorf("%s: leaked tables after vectorized chaos run (seed %d): %v", c.Name, seed, leaks)
	}
	if err != nil {
		var se *pdwqo.StepError
		if !errors.As(err, &se) {
			return fmt.Errorf("%s: vectorized chaos failure (seed %d) is not a typed StepError: %w", c.Name, seed, err)
		}
		return nil // clean typed failure is an accepted outcome
	}
	if derr := diffEngines(c.Name, ref, res); derr != nil {
		return fmt.Errorf("vectorized chaos (seed %d, %d faults fired, retries %d): %w",
			seed, faults.Fired(), maxRetries, derr)
	}
	return nil
}

// diffEngines asserts exact row-for-row equality between the row engine's
// result and the vectorized engine's.
func diffEngines(name string, row, vect *pdwqo.Result) error {
	if rc, vc := strings.Join(row.Columns, "|"), strings.Join(vect.Columns, "|"); rc != vc {
		return fmt.Errorf("%s: result columns diverged: row %q, vectorized %q", name, rc, vc)
	}
	if len(row.Rows) != len(vect.Rows) {
		return fmt.Errorf("%s: row count diverged: row engine %d, vectorized %d", name, len(row.Rows), len(vect.Rows))
	}
	for i := range row.Rows {
		a, b := canonRow(row.Rows[i]), canonRow(vect.Rows[i])
		if a != b {
			return fmt.Errorf("%s: row %d diverged:\n  row engine: %s\n  vectorized: %s", name, i, a, b)
		}
	}
	return nil
}

package baretruthy_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/baretruthy"
)

func TestBareTruthy(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), baretruthy.Analyzer)
}

package server

import (
	"context"
	"testing"
	"time"
)

func TestAdmissionGrantsUpToCapacity(t *testing.T) {
	a := newAdmission(2, 2, 0)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := a.stats()
	if st.Running != 2 || st.Admitted != 2 {
		t.Errorf("stats = %+v", st)
	}
	r1()
	r2()
	if st := a.stats(); st.Running != 0 || st.Waiting != 0 {
		t.Errorf("after release: %+v", st)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1, 0)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the one queue position with a waiter.
	waiting := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		r, err := a.acquire(ctx)
		if err == nil {
			r()
		}
		waiting <- err
	}()
	// Wait until the waiter holds the queue ticket.
	deadline := time.Now().Add(5 * time.Second)
	for a.stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The next arrival is shed immediately with the typed rejection.
	if _, err := a.acquire(context.Background()); CodeOf(err) != CodeQueueFull {
		t.Fatalf("want CodeQueueFull, got %v", err)
	}
	if a.stats().RejectedFull != 1 {
		t.Error("rejectedFull counter")
	}
	release()
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter must be admitted after release: %v", err)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 4, 20*time.Millisecond)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := a.acquire(context.Background()); CodeOf(err) != CodeQueueTimeout {
		t.Fatalf("want CodeQueueTimeout, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout took far longer than configured")
	}
	st := a.stats()
	if st.RejectedTimeout != 1 {
		t.Errorf("rejectedTimeout = %d", st.RejectedTimeout)
	}
	if st.Waiting != 0 {
		t.Error("timed-out waiter must release its queue ticket")
	}
}

func TestAdmissionCancelledWait(t *testing.T) {
	a := newAdmission(1, 4, 0)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.acquire(ctx); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st := a.stats()
	if st.Abandoned != 1 {
		t.Errorf("abandoned = %d", st.Abandoned)
	}
	if st.Waiting != 0 {
		t.Error("cancelled waiter must release its queue ticket")
	}
}

// TestServerQueueFullRejection drives the typed shed path end to end:
// with one slot held and a zero-length queue, the next wire query is
// rejected CodeQueueFull and the session stays usable.
func TestServerQueueFullRejection(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 1)
	cfg := Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		PhaseHook: func(ph Phase, _ string) {
			if ph == PhaseCompiling {
				select {
				case blocked <- struct{}{}:
					<-release
				default:
				}
			}
		},
	}
	srv, addr := startServer(t, sharedDB(t), cfg)
	hold, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	holdDone := make(chan error, 1)
	go func() {
		_, err := hold.Query(context.Background(), "SELECT r_name FROM region ORDER BY r_name")
		holdDone <- err
	}()
	<-blocked // the slot is now occupied mid-compile

	// Fill the queue with a second session's waiter.
	waiterErr := make(chan error, 1)
	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	go func() {
		_, err := waiter.Query(context.Background(), "SELECT r_name FROM region ORDER BY r_name")
		waiterErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Admission.Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// A third session is shed instantly with the typed rejection.
	shed, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()
	if _, err := shed.Query(context.Background(), "SELECT r_name FROM region"); CodeOf(err) != CodeQueueFull {
		t.Fatalf("want CodeQueueFull, got %v", err)
	}
	// The shed session survives the rejection.
	close(release)
	if err := <-holdDone; err != nil {
		t.Fatalf("held query: %v", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	if _, err := shed.Query(context.Background(), "SELECT r_name FROM region ORDER BY r_name"); err != nil {
		t.Fatalf("shed session unusable: %v", err)
	}
	if srv.Stats().Admission.RejectedFull == 0 {
		t.Error("rejection not counted")
	}
}

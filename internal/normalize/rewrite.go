package normalize

import (
	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// foldTree applies constant folding and boolean simplification to every
// scalar in the tree.
func foldTree(t *algebra.Tree) *algebra.Tree {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = foldTree(c)
	}
	op := t.Op
	switch o := op.(type) {
	case *algebra.Select:
		op = &algebra.Select{Filter: FoldScalar(o.Filter)}
	case *algebra.Project:
		defs := make([]algebra.ProjDef, len(o.Defs))
		for i, d := range o.Defs {
			defs[i] = algebra.ProjDef{Expr: FoldScalar(d.Expr), ID: d.ID, Name: d.Name}
		}
		op = &algebra.Project{Defs: defs}
	case *algebra.Join:
		if o.On != nil {
			op = &algebra.Join{Kind: o.Kind, On: FoldScalar(o.On)}
		}
	case *algebra.GroupBy:
		aggs := make([]algebra.AggDef, len(o.Aggs))
		for i, a := range o.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = FoldScalar(a.Arg)
			}
		}
		op = &algebra.GroupBy{Keys: o.Keys, Aggs: aggs, Phase: o.Phase}
	}
	out := algebra.NewTree(op, children...)
	// A Select with a constant-true filter disappears; constant-false is
	// handled by contradiction detection.
	if sel, ok := out.Op.(*algebra.Select); ok {
		if c, ok := sel.Filter.(*algebra.Const); ok && !c.Val.IsNull() && c.Val.Kind() == types.KindBool && c.Val.Bool() {
			return out.Children[0]
		}
	}
	return out
}

// FoldScalar simplifies an expression: constant arithmetic and comparisons
// evaluate; AND/OR with constant sides collapse; double negation drops.
func FoldScalar(e algebra.Scalar) algebra.Scalar {
	return algebra.RewriteScalar(e, func(x algebra.Scalar) algebra.Scalar {
		switch b := x.(type) {
		case *algebra.Binary:
			lc, lok := b.L.(*algebra.Const)
			rc, rok := b.R.(*algebra.Const)
			switch b.Op {
			case sqlparser.OpAnd:
				if lok {
					return foldAndSide(lc.Val, b.R)
				}
				if rok {
					return foldAndSide(rc.Val, b.L)
				}
			case sqlparser.OpOr:
				if lok {
					return foldOrSide(lc.Val, b.R)
				}
				if rok {
					return foldOrSide(rc.Val, b.L)
				}
			default:
				if lok && rok {
					if v, ok := evalConstBinary(b.Op, lc.Val, rc.Val); ok {
						return &algebra.Const{Val: v}
					}
				}
			}
		case *algebra.Not:
			if c, ok := b.E.(*algebra.Const); ok {
				if c.Val.IsNull() {
					return &algebra.Const{Val: types.Null}
				}
				if c.Val.Kind() == types.KindBool {
					return &algebra.Const{Val: types.NewBool(!c.Val.Bool())}
				}
			}
			if inner, ok := b.E.(*algebra.Not); ok {
				return inner.E
			}
		case *algebra.Neg:
			if c, ok := b.E.(*algebra.Const); ok && c.Val.Kind().Numeric() {
				if v, err := types.Neg(c.Val); err == nil {
					return &algebra.Const{Val: v}
				}
			}
		case *algebra.IsNull:
			if c, ok := b.E.(*algebra.Const); ok {
				return &algebra.Const{Val: types.NewBool(c.Val.IsNull() != b.Negated)}
			}
		case *algebra.Like:
			if c, ok := b.E.(*algebra.Const); ok && c.Val.Kind() == types.KindString {
				m := MatchLike(c.Val.Str(), b.Pattern)
				return &algebra.Const{Val: types.NewBool(m != b.Negated)}
			}
		case *algebra.Func:
			allConst := len(b.Args) > 0
			for _, a := range b.Args {
				if _, ok := a.(*algebra.Const); !ok {
					allConst = false
				}
			}
			if allConst {
				vals := make([]types.Value, len(b.Args))
				for i, a := range b.Args {
					vals[i] = a.(*algebra.Const).Val
				}
				if v, err := algebra.EvalConstFunc(b.Name, vals); err == nil {
					return &algebra.Const{Val: v}
				}
			}
		}
		return nil
	})
}

func foldAndSide(v types.Value, other algebra.Scalar) algebra.Scalar {
	if !v.IsNull() && v.Kind() == types.KindBool {
		if v.Bool() {
			return other
		}
		return &algebra.Const{Val: types.NewBool(false)}
	}
	return nil
}

func foldOrSide(v types.Value, other algebra.Scalar) algebra.Scalar {
	if !v.IsNull() && v.Kind() == types.KindBool {
		if v.Bool() {
			return &algebra.Const{Val: types.NewBool(true)}
		}
		return other
	}
	return nil
}

// evalConstBinary evaluates op over two constants with SQL NULL semantics.
func evalConstBinary(op sqlparser.BinOp, l, r types.Value) (types.Value, bool) {
	if op.IsComparison() {
		if l.IsNull() || r.IsNull() {
			return types.Null, true
		}
		if !types.Comparable(l.Kind(), r.Kind()) {
			return types.Null, false
		}
		c := types.Compare(l, r)
		var out bool
		switch op {
		case sqlparser.OpEq:
			out = c == 0
		case sqlparser.OpNe:
			out = c != 0
		case sqlparser.OpLt:
			out = c < 0
		case sqlparser.OpLe:
			out = c <= 0
		case sqlparser.OpGt:
			out = c > 0
		case sqlparser.OpGe:
			out = c >= 0
		}
		return types.NewBool(out), true
	}
	var v types.Value
	var err error
	switch op {
	case sqlparser.OpAdd:
		v, err = types.Add(l, r)
	case sqlparser.OpSub:
		v, err = types.Sub(l, r)
	case sqlparser.OpMul:
		v, err = types.Mul(l, r)
	case sqlparser.OpDiv:
		v, err = types.Div(l, r)
	default:
		return types.Null, false
	}
	if err != nil {
		return types.Null, false
	}
	return v, true
}

// MatchLike evaluates a SQL LIKE pattern with % and _ wildcards; shared by
// constant folding and the runtime evaluator.
func MatchLike(s, pattern string) bool {
	// Fast path for pure-prefix patterns, the common TPC-H shape.
	if i := indexWildcard(pattern); i < 0 {
		return s == pattern
	} else if pattern[i] == '%' && i == len(pattern)-1 && indexWildcard(pattern[:i]) < 0 {
		return stats.MatchesLikePrefix(s, pattern[:i])
	}
	return likeMatch(s, pattern)
}

func indexWildcard(p string) int {
	for i := 0; i < len(p); i++ {
		if p[i] == '%' || p[i] == '_' {
			return i
		}
	}
	return -1
}

// likeMatch is a standard greedy-with-backtracking wildcard matcher.
func likeMatch(s, p string) bool {
	var si, pi, starP, starS = 0, 0, -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// pushdown moves filter conjuncts as close to the data as possible,
// converts qualified cross joins into inner joins, merges adjacent
// selects, simplifies outer joins under null-rejecting predicates, and
// pulls single-side conjuncts out of join conditions. It iterates to a
// fixpoint.
func pushdown(t *algebra.Tree) *algebra.Tree {
	for i := 0; i < 10; i++ {
		next, changed := pushdownOnce(t)
		t = next
		if !changed {
			break
		}
	}
	return t
}

func pushdownOnce(t *algebra.Tree) (*algebra.Tree, bool) {
	changed := false
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		nc, ch := pushdownOnce(c)
		children[i] = nc
		changed = changed || ch
	}
	t = algebra.NewTreeSameSchema(t, t.Op, children...)

	switch op := t.Op.(type) {
	case *algebra.Select:
		// Merge Select(Select(x)).
		if innerSel, ok := t.Children[0].Op.(*algebra.Select); ok {
			merged := algebra.AndAll([]algebra.Scalar{op.Filter, innerSel.Filter})
			return algebra.NewTreeSameSchema(t, &algebra.Select{Filter: merged}, t.Children[0].Children[0]), true
		}
		var kept []algebra.Scalar
		node := t.Children[0]
		for _, conj := range algebra.Conjuncts(op.Filter) {
			placed, ok := placeConjunct(node, conj)
			if ok {
				node = placed
				changed = true
			} else {
				kept = append(kept, conj)
			}
		}
		if len(kept) == 0 {
			return node, true
		}
		return algebra.NewTreeSameSchema(t, &algebra.Select{Filter: algebra.AndAll(kept)}, node), changed

	case *algebra.Join:
		if op.On == nil {
			return t, changed
		}
		left, right := t.Children[0], t.Children[1]
		var keep []algebra.Scalar
		for _, conj := range algebra.Conjuncts(op.On) {
			cols := algebra.ScalarCols(conj)
			switch op.Kind {
			case algebra.JoinInner, algebra.JoinCross:
				if cols.SubsetOf(left.OutputColSet()) && len(cols) > 0 {
					left = algebra.NewTreeSameSchema(left, &algebra.Select{Filter: conj}, left)
					changed = true
					continue
				}
				if cols.SubsetOf(right.OutputColSet()) && len(cols) > 0 {
					right = algebra.NewTreeSameSchema(right, &algebra.Select{Filter: conj}, right)
					changed = true
					continue
				}
			case algebra.JoinLeftOuter:
				// Only right-side-only conjuncts push into the right input.
				if cols.SubsetOf(right.OutputColSet()) && len(cols) > 0 {
					right = algebra.NewTreeSameSchema(right, &algebra.Select{Filter: conj}, right)
					changed = true
					continue
				}
			case algebra.JoinSemi, algebra.JoinAnti:
				if cols.SubsetOf(right.OutputColSet()) && len(cols) > 0 {
					right = algebra.NewTreeSameSchema(right, &algebra.Select{Filter: conj}, right)
					changed = true
					continue
				}
			}
			keep = append(keep, conj)
		}
		kind := op.Kind
		if kind == algebra.JoinCross && len(keep) > 0 {
			kind = algebra.JoinInner
			changed = true
		}
		if !changed {
			return t, false
		}
		return algebra.NewTreeSameSchema(t, &algebra.Join{Kind: kind, On: algebra.AndAll(keep)}, left, right), true
	}
	return t, changed
}

// placeConjunct attempts to push one conjunct into node, returning the
// rewritten node. It descends through projects (inlining definitions),
// joins, group-bys (key-only conjuncts), sorts without TOP, and unions.
func placeConjunct(node *algebra.Tree, conj algebra.Scalar) (*algebra.Tree, bool) {
	cols := algebra.ScalarCols(conj)
	switch op := node.Op.(type) {
	case *algebra.Select:
		// Append to the child select (it will merge on the next pass).
		return algebra.NewTreeSameSchema(node, &algebra.Select{Filter: algebra.AndAll([]algebra.Scalar{op.Filter, conj})}, node.Children[0]), true

	case *algebra.Project:
		inlined, ok := inlineThroughProject(conj, op)
		if !ok {
			return node, false
		}
		child, pushed := placeConjunct(node.Children[0], inlined)
		if !pushed {
			child = algebra.NewTreeSameSchema(node.Children[0], &algebra.Select{Filter: inlined}, node.Children[0])
		}
		return algebra.NewTreeSameSchema(node, op, child), true

	case *algebra.Join:
		left, right := node.Children[0], node.Children[1]
		switch op.Kind {
		case algebra.JoinInner, algebra.JoinCross:
			if cols.SubsetOf(left.OutputColSet()) {
				nl, pushed := placeConjunct(left, conj)
				if !pushed {
					nl = algebra.NewTreeSameSchema(left, &algebra.Select{Filter: conj}, left)
				}
				return algebra.NewTreeSameSchema(node, op, nl, right), true
			}
			if cols.SubsetOf(right.OutputColSet()) {
				nr, pushed := placeConjunct(right, conj)
				if !pushed {
					nr = algebra.NewTreeSameSchema(right, &algebra.Select{Filter: conj}, right)
				}
				return algebra.NewTreeSameSchema(node, op, left, nr), true
			}
			// Spans both sides: fold into the join condition.
			kind := op.Kind
			if kind == algebra.JoinCross {
				kind = algebra.JoinInner
			}
			on := algebra.AndAll([]algebra.Scalar{op.On, conj})
			return algebra.NewTreeSameSchema(node, &algebra.Join{Kind: kind, On: on}, left, right), true

		case algebra.JoinLeftOuter:
			if cols.SubsetOf(left.OutputColSet()) {
				nl, pushed := placeConjunct(left, conj)
				if !pushed {
					nl = algebra.NewTreeSameSchema(left, &algebra.Select{Filter: conj}, left)
				}
				return algebra.NewTreeSameSchema(node, op, nl, right), true
			}
			// A null-rejecting predicate over right-side columns converts
			// the outer join to inner (paper §5: outer-join reordering
			// enablement), after which it can be pushed normally.
			if cols.Intersects(right.OutputColSet()) && isNullRejectingOn(conj, right.OutputColSet()) {
				inner := algebra.NewTreeSameSchema(node, &algebra.Join{Kind: algebra.JoinInner, On: op.On}, left, right)
				return placeConjunct(inner, conj)
			}
			return node, false

		case algebra.JoinSemi, algebra.JoinAnti:
			if cols.SubsetOf(left.OutputColSet()) {
				nl, pushed := placeConjunct(left, conj)
				if !pushed {
					nl = algebra.NewTreeSameSchema(left, &algebra.Select{Filter: conj}, left)
				}
				return algebra.NewTreeSameSchema(node, op, nl, right), true
			}
			return node, false
		}
		return node, false

	case *algebra.GroupBy:
		if op.Phase != algebra.AggComplete {
			return node, false
		}
		if cols.SubsetOf(algebra.NewColSet(op.Keys...)) && len(cols) > 0 {
			child, pushed := placeConjunct(node.Children[0], conj)
			if !pushed {
				child = algebra.NewTreeSameSchema(node.Children[0], &algebra.Select{Filter: conj}, node.Children[0])
			}
			return algebra.NewTreeSameSchema(node, op, child), true
		}
		return node, false

	case *algebra.Sort:
		if op.Top > 0 {
			return node, false
		}
		child, pushed := placeConjunct(node.Children[0], conj)
		if !pushed {
			child = algebra.NewTreeSameSchema(node.Children[0], &algebra.Select{Filter: conj}, node.Children[0])
		}
		return algebra.NewTreeSameSchema(node, op, child), true

	case *algebra.UnionAll:
		l, lp := placeConjunct(node.Children[0], conj)
		if !lp {
			l = algebra.NewTreeSameSchema(node.Children[0], &algebra.Select{Filter: conj}, node.Children[0])
		}
		r, rp := placeConjunct(node.Children[1], conj)
		if !rp {
			r = algebra.NewTreeSameSchema(node.Children[1], &algebra.Select{Filter: conj}, node.Children[1])
		}
		return algebra.NewTreeSameSchema(node, op, l, r), true
	}
	return node, false
}

// inlineThroughProject rewrites a conjunct's column references by inlining
// the project's definitions, so the predicate can evaluate below it.
func inlineThroughProject(conj algebra.Scalar, p *algebra.Project) (algebra.Scalar, bool) {
	defs := make(map[algebra.ColumnID]algebra.Scalar, len(p.Defs))
	for _, d := range p.Defs {
		defs[d.ID] = d.Expr
	}
	ok := true
	out := algebra.RewriteScalar(conj, func(e algebra.Scalar) algebra.Scalar {
		if c, okc := e.(*algebra.ColRef); okc {
			rep, found := defs[c.ID]
			if !found {
				ok = false
				return nil
			}
			return rep
		}
		return nil
	})
	return out, ok
}

// isNullRejectingOn reports whether the predicate cannot be true when the
// columns of `side` it references are all NULL — the condition for
// outer→inner join conversion. Comparisons, LIKE and positive IN reject
// NULLs of any column they reference; AND rejects if either conjunct does;
// OR only if both disjuncts do.
func isNullRejectingOn(e algebra.Scalar, side algebra.ColSet) bool {
	touches := func(s algebra.Scalar) bool { return algebra.ScalarCols(s).Intersects(side) }
	switch x := e.(type) {
	case *algebra.Binary:
		if x.Op.IsComparison() {
			return touches(x)
		}
		if x.Op == sqlparser.OpAnd {
			return isNullRejectingOn(x.L, side) || isNullRejectingOn(x.R, side)
		}
		if x.Op == sqlparser.OpOr {
			return isNullRejectingOn(x.L, side) && isNullRejectingOn(x.R, side)
		}
		return false
	case *algebra.Like:
		return touches(x)
	case *algebra.InList:
		return !x.Negated && touches(x)
	case *algebra.IsNull:
		return x.Negated && touches(x.E) && !hasNonColRef(x.E)
	default:
		return false
	}
}

// hasNonColRef reports whether the expression is more than a bare column,
// in which case IS NOT NULL reasoning is not sound (e.g. COALESCE-like
// rewrites could mask NULL inputs).
func hasNonColRef(e algebra.Scalar) bool {
	_, ok := e.(*algebra.ColRef)
	return !ok
}

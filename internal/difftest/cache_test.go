package difftest

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pdwqo"
)

// TestCacheMetamorphicTPCH is the headline plan-cache sweep: every
// adapted TPC-H query on every topology must produce byte-identical rows
// from a cold compile, a cache-populating miss, and a re-bound cache hit,
// and all three must agree with the single-instance serial reference.
func TestCacheMetamorphicTPCH(t *testing.T) {
	topologies := []int{1, 2, 4, 8}
	if testing.Short() {
		topologies = []int{4}
	}
	if raceEnabled {
		topologies = []int{8}
	}
	cases := TPCHCases()
	if raceEnabled {
		// The race detector multiplies execution cost ~10x and the oracle
		// executes each case four times; sample the corpus to keep the
		// package inside the test timeout (the full sweep runs without
		// -race on the main test lane).
		cases = sample(cases, 3)
	}
	for _, nodes := range topologies {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes-%d", nodes), func(t *testing.T) {
			db := openAppliance(t, nodes)
			for _, c := range cases {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					if err := CacheDiff(db, c, 8); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// sample keeps every stride-th case, always including the first.
func sample(cases []Case, stride int) []Case {
	var out []Case
	for i := 0; i < len(cases); i += stride {
		out = append(out, cases[i])
	}
	return out
}

// TestCacheMetamorphicFuzz runs the seeded random corpus through the
// cold/miss/hit/serial oracle on the 4-node appliance.
func TestCacheMetamorphicFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus skipped in -short mode")
	}
	db := openAppliance(t, 4)
	for _, c := range FuzzCases(40, 20260805) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if err := CacheDiff(db, c, 8); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCacheInvalidation certifies the epoch contract across a mixed
// corpus slice: after a DDL/stats epoch bump no cached plan is served,
// and the recompiled plan reproduces the pre-bump rows.
func TestCacheInvalidation(t *testing.T) {
	db := openAppliance(t, 4)
	cases := append(TPCHCases()[:6], FuzzCases(6, 20260807)...)
	if raceEnabled {
		cases = sample(cases, 2)
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if err := CacheInvalidation(db, c, 8); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCacheChaos executes cache-served plans under seeded random fault
// plans: a re-bound template must be exactly as robust as a cold plan —
// recover to the fault-free answer, or fail with a typed StepError, and
// never leak temp tables.
func TestCacheChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	db := openAppliance(t, 4)
	for i, c := range TPCHCases()[:8] {
		i, c := i, c
		t.Run(c.Name, func(t *testing.T) {
			retries := 3
			if i%3 == 2 {
				retries = 0
			}
			if err := CacheChaos(db, c, 8, int64(17000+i), retries); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCacheParamVariants is the aliasing oracle: same-shape queries with
// different constants share one cached template, and every re-bound
// instantiation must match its own serial reference — a stale or
// wrongly-bound constant diverges immediately. The sweep asserts the
// variants actually hit the cache, so the oracle is known to exercise
// the re-binding path rather than silently compiling cold.
func TestCacheParamVariants(t *testing.T) {
	db := openAppliance(t, 4)
	db.SetParallelism(8)
	db.SetPlanCache(cacheCapacity)
	defer db.SetPlanCache(-1)

	bases := append(TPCHCases()[:4], FuzzCases(10, 20260808)...)
	perBase := 4
	if raceEnabled {
		bases = sample(bases, 2)
		perBase = 2
	}
	var hits int64
	for _, base := range bases {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			variants, err := ParamVariants(base, perBase, int64(len(base.SQL)))
			if err != nil {
				t.Fatal(err)
			}
			if len(variants) == 0 {
				t.Skip("no parameterizable literals")
			}
			// Warm the cache with the base query's template.
			if _, err := db.Optimize(base.SQL, pdwqo.Options{Parallelism: 8}); err != nil {
				t.Fatalf("warm optimize: %v", err)
			}
			for _, v := range variants {
				plan, err := db.Optimize(v.SQL, pdwqo.Options{Parallelism: 8})
				if err != nil {
					t.Fatalf("%s: optimize: %v", v.Name, err)
				}
				if plan.CacheStatus == "hit" {
					hits++
				}
				res, err := db.ExecutePlan(plan)
				if err != nil {
					t.Fatalf("%s: execute: %v", v.Name, err)
				}
				if err := serialAgrees(db, v, res); err != nil {
					t.Errorf("cache status %q: %v", plan.CacheStatus, err)
				}
			}
		})
	}
	if hits == 0 {
		t.Error("no variant ever hit the cache; the aliasing oracle exercised nothing")
	}
}

// TestCacheStampedeDB is the end-to-end (-race) stampede: 64 goroutines
// optimize through one shared DB-level cache — every goroutine hammers a
// hot query shape with its own distinct constant while a quarter also
// rotate through distinct shapes — and a writer concurrently bumps the
// catalog epoch. Each caller must get a plan bound to its own constant
// (never another caller's — the aliasing/staleness contract), and the
// singleflight must keep total compilations well below total requests.
func TestCacheStampedeDB(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.001, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlanCache(cacheCapacity)
	goroutines, rounds := 64, 20
	if raceEnabled {
		rounds = 8
	}
	shapes := []string{
		"SELECT c_custkey FROM customer WHERE c_acctbal > %d",
		"SELECT c_custkey FROM customer WHERE c_acctbal > %d AND c_nationkey < 99",
		"SELECT o_orderkey FROM orders WHERE o_totalprice < %d",
		"SELECT s_suppkey FROM supplier WHERE s_acctbal > %d AND s_nationkey < 99",
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Throttled: a bump between every pair of requests would turn the
		// whole run into misses and starve the sharing assertion below.
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				db.Shell().BumpEpoch()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				shape := shapes[0]
				if g%4 == 0 && r%2 == 1 {
					shape = shapes[1+(g+r)%(len(shapes)-1)]
				}
				// A per-(goroutine, round) constant: if any caller is served
				// a plan bound to a different caller's literal, the text
				// check below catches it.
				lit := 100000 + g*1000 + r
				sql := fmt.Sprintf(shape, lit)
				plan, err := db.Optimize(sql, pdwqo.Options{Parallelism: 2})
				if err != nil {
					t.Errorf("g%d r%d: %v", g, r, err)
					return
				}
				switch plan.CacheStatus {
				case "hit", "shared", "miss":
				default:
					t.Errorf("g%d r%d: CacheStatus = %q", g, r, plan.CacheStatus)
					return
				}
				if text := plan.DSQL.String(); !strings.Contains(text, fmt.Sprint(lit)) {
					t.Errorf("g%d r%d (%s): plan not bound to this caller's literal %d:\n%s",
						g, r, plan.CacheStatus, lit, text)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	m := db.PlanCache().Metrics()
	total := int64(goroutines * rounds)
	t.Logf("metrics after %d requests: %+v", total, m)
	if m.Hits+m.Shared == 0 {
		t.Error("stampede produced no cache sharing at all")
	}
	if m.Compiles >= total {
		t.Errorf("singleflight ineffective: %d compiles for %d requests", m.Compiles, total)
	}
}

package transval

import (
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
)

// seeded returns an interpreter with one pre-derived input relation, so
// derive() tests exercise exactly one operator.
func seeded(in *absRel) (*planInterp, *core.Option) {
	pi := newPlanInterp()
	inOpt := &core.Option{}
	pi.rels[inOpt] = in
	return pi, inOpt
}

func hashRel(ids ...algebra.ColumnID) *absRel {
	r := &absRel{dist: absDist{Kind: core.DistHash, Cols: algebra.NewColSet(ids[0])}}
	for _, id := range ids {
		r.cols = append(r.cols, absCol{ID: id, Type: types.KindInt,
			Origins: map[string]struct{}{"t.x": {}}})
	}
	return r
}

func withDist(r *absRel, k core.DistKind) *absRel {
	c := &absRel{cols: cloneCols(r.cols), dist: absDist{Kind: k}}
	return c
}

func TestDeriveMoves(t *testing.T) {
	cases := []struct {
		kind cost.MoveKind
		want core.DistKind
	}{
		{cost.Shuffle, core.DistHash},
		{cost.Trim, core.DistHash},
		{cost.Broadcast, core.DistReplicated},
		{cost.ControlNodeMove, core.DistReplicated},
		{cost.ReplicatedBroadcast, core.DistReplicated},
		{cost.PartitionMove, core.DistSingle},
		{cost.RemoteCopySingle, core.DistSingle},
	}
	for _, c := range cases {
		pi, in := seeded(hashRel(7))
		o := &core.Option{Move: &core.MoveSpec{Kind: c.kind, Col: 7}, Inputs: []*core.Option{in}}
		r, ok := pi.derive(o)
		if !ok || r.dist.Kind != c.want {
			t.Errorf("%v: dist = %v, ok=%v, want kind %v", c.kind, r.dist, ok, c.want)
		}
		if c.want == core.DistHash && !r.dist.Cols.Has(7) {
			t.Errorf("%v: hash class missing move column", c.kind)
		}
	}
}

func TestDeriveValues(t *testing.T) {
	pi := newPlanInterp()
	meta := []algebra.ColumnMeta{{ID: 1, Name: "a", Type: types.KindInt}}

	empty := &core.Option{Op: &algebra.Values{Cols: meta}}
	r, ok := pi.derive(empty)
	if !ok || !r.cols[0].Nullable || r.dist.Kind != core.DistReplicated {
		t.Errorf("empty values: %+v ok=%v", r, ok)
	}

	withNull := &core.Option{Op: &algebra.Values{Cols: meta,
		Rows: [][]types.Value{{types.Null}}}}
	if r, _ := pi.derive(withNull); !r.cols[0].Nullable {
		t.Error("NULL literal row must derive nullable")
	}

	plain := &core.Option{Op: &algebra.Values{Cols: meta,
		Rows: [][]types.Value{{types.NewInt(4)}}}}
	if r, _ := pi.derive(plain); r.cols[0].Nullable {
		t.Error("non-NULL literal row must derive non-nullable")
	}
}

func TestDeriveGet(t *testing.T) {
	pi := newPlanInterp()
	var hashTab, replTab *algebra.Get
	for _, tb := range tpch.Tables() {
		cols := make([]algebra.ColumnMeta, len(tb.Columns))
		for i, c := range tb.Columns {
			cols[i] = algebra.ColumnMeta{ID: algebra.ColumnID(i + 1), Name: c.Name, Type: c.Type}
		}
		g := &algebra.Get{Table: tb, Cols: cols}
		if tb.Name == "lineitem" {
			hashTab = g
		}
		if tb.Name == "nation" {
			replTab = g
		}
	}
	r, ok := pi.derive(&core.Option{Op: hashTab})
	if !ok || r.dist.Kind != core.DistHash || len(r.dist.Cols) != 1 {
		t.Errorf("lineitem get dist = %v", r.dist)
	}
	if _, has := r.cols[0].Origins["lineitem.l_orderkey"]; !has {
		t.Errorf("get origins = %v", r.cols[0].Origins)
	}
	r, ok = pi.derive(&core.Option{Op: replTab})
	if !ok || r.dist.Kind != core.DistReplicated {
		t.Errorf("nation get dist = %v", r.dist)
	}
}

func TestDeriveProjectComputed(t *testing.T) {
	pi, in := seeded(hashRel(1, 2))
	proj := &algebra.Project{Defs: []algebra.ProjDef{
		{ID: 9, Expr: &algebra.Func{Name: "YEAR",
			Args: []algebra.Scalar{col(1, types.KindDate)}, Out: types.KindInt}},
		{ID: 10, Expr: col(2, types.KindInt)},
	}}
	r, ok := pi.derive(&core.Option{Op: proj, Inputs: []*core.Option{in}})
	if !ok {
		t.Fatal("project underivable")
	}
	if r.cols[0].Type != types.KindInt {
		t.Errorf("computed col type = %v", r.cols[0].Type)
	}
	if _, has := r.cols[0].Origins["t.x"]; !has {
		t.Errorf("computed col origins = %v", r.cols[0].Origins)
	}
	// The rename c2 -> c10 must keep the hash class alive when c1 drops.
	proj2 := &algebra.Project{Defs: []algebra.ProjDef{{ID: 10, Expr: col(1, types.KindInt)}}}
	r, _ = pi.derive(&core.Option{Op: proj2, Inputs: []*core.Option{in}})
	if !r.dist.Cols.Has(10) {
		t.Errorf("renamed hash class = %v", r.dist)
	}
}

func TestDeriveUnionAll(t *testing.T) {
	mk := func(l, r *absRel) (*planInterp, *core.Option) {
		pi := newPlanInterp()
		lo, ro := &core.Option{}, &core.Option{}
		pi.rels[lo] = l
		pi.rels[ro] = r
		return pi, &core.Option{Op: &algebra.UnionAll{}, Inputs: []*core.Option{lo, ro}}
	}
	base := hashRel(1)

	pi, o := mk(withDist(base, core.DistSingle), withDist(base, core.DistSingle))
	if r, ok := pi.derive(o); !ok || r.dist.Kind != core.DistSingle {
		t.Error("single+single union")
	}
	pi, o = mk(withDist(base, core.DistReplicated), withDist(base, core.DistReplicated))
	if r, ok := pi.derive(o); !ok || r.dist.Kind != core.DistReplicated {
		t.Error("repl+repl union")
	}
	pi, o = mk(hashRel(1), hashRel(1))
	if r, ok := pi.derive(o); !ok || !r.dist.Cols.Has(1) {
		t.Error("hash+hash union with shared class")
	}
	left, right := hashRel(1, 2), hashRel(1, 2)
	right.dist = absDist{Kind: core.DistHash, Cols: algebra.NewColSet(2)}
	pi, o = mk(left, right)
	if _, ok := pi.derive(o); ok {
		t.Error("disjoint hash classes must be underivable")
	}
	pi, o = mk(withDist(base, core.DistSingle), withDist(base, core.DistReplicated))
	if _, ok := pi.derive(o); ok {
		t.Error("mixed single+repl must be underivable")
	}

	// Nullability and origins union across branches.
	l2, r2 := hashRel(1), hashRel(1)
	r2.cols[0].Nullable = true
	r2.cols[0].Origins = map[string]struct{}{"u.y": {}}
	pi, o = mk(l2, r2)
	if r, _ := pi.derive(o); !r.cols[0].Nullable || len(r.cols[0].Origins) != 2 {
		t.Errorf("union col merge = %+v", r.cols[0])
	}
}

func TestDeriveGroupBy(t *testing.T) {
	sum := algebra.AggDef{Func: algebra.AggSum, Arg: col(2, types.KindInt), ID: 9}

	// Keyless SUM over a single-node input: nullable result.
	pi, in := seeded(withDist(hashRel(1, 2), core.DistSingle))
	gb := &algebra.GroupBy{Aggs: []algebra.AggDef{sum}}
	r, ok := pi.derive(&core.Option{Op: gb, Inputs: []*core.Option{in}})
	if !ok || !r.cols[0].Nullable {
		t.Errorf("keyless sum: %+v ok=%v", r.cols, ok)
	}

	// Keyless aggregate over a hash placement is not locally computable.
	pi, in = seeded(hashRel(1, 2))
	if _, ok := pi.derive(&core.Option{Op: gb, Inputs: []*core.Option{in}}); ok {
		t.Error("keyless agg over hash must be underivable")
	}

	// Partial phase is computable anywhere; the class restricts to keys.
	partial := &algebra.GroupBy{Keys: []algebra.ColumnID{2}, Aggs: []algebra.AggDef{sum},
		Phase: algebra.AggPartial}
	pi, in = seeded(hashRel(1, 2))
	if r, ok := pi.derive(&core.Option{Op: partial, Inputs: []*core.Option{in}}); !ok || len(r.dist.Cols) != 0 {
		t.Errorf("partial over non-key hash: dist = %v ok=%v", r.dist, ok)
	}

	// Keyed complete agg whose keys cover the hash class is fine.
	keyed := &algebra.GroupBy{Keys: []algebra.ColumnID{1}, Aggs: []algebra.AggDef{sum}}
	pi, in = seeded(hashRel(1, 2))
	if r, ok := pi.derive(&core.Option{Op: keyed, Inputs: []*core.Option{in}}); !ok || !r.dist.Cols.Has(1) {
		t.Errorf("keyed agg: dist = %v ok=%v", r.dist, ok)
	}

	// Keys disjoint from the hash class: rows for one group live on many
	// nodes, so the complete phase is underivable.
	offKey := &algebra.GroupBy{Keys: []algebra.ColumnID{2}, Aggs: []algebra.AggDef{sum}}
	pi, in = seeded(hashRel(1, 2))
	if _, ok := pi.derive(&core.Option{Op: offKey, Inputs: []*core.Option{in}}); ok {
		t.Error("off-key complete agg must be underivable")
	}
}

func TestRelRecordsDistributionViolation(t *testing.T) {
	// An underivable placement must surface CodeDistribution and fall
	// back to the recorded one so later steps stay analyzable.
	pi, in := seeded(hashRel(1, 2))
	gb := &algebra.GroupBy{Aggs: []algebra.AggDef{{Func: algebra.AggSum, Arg: col(2, types.KindInt), ID: 9}}}
	o := &core.Option{Op: gb, Inputs: []*core.Option{in}, Dist: core.Single()}
	r := pi.rel(o)
	if len(pi.vs) != 1 || pi.vs[0].Code != CodeDistribution {
		t.Fatalf("violations = %v", pi.vs)
	}
	if r.dist.Kind != core.DistSingle {
		t.Errorf("fallback dist = %v, want recorded single", r.dist)
	}
	// Memoized: a second read must not re-report.
	pi.rel(o)
	if len(pi.vs) != 1 {
		t.Error("memoized rel re-reported")
	}

	// A derivable but mismatching recorded placement also fires.
	pi2, in2 := seeded(hashRel(1))
	o2 := &core.Option{Move: &core.MoveSpec{Kind: cost.Broadcast}, Inputs: []*core.Option{in2},
		Dist: core.Single()}
	pi2.rel(o2)
	if len(pi2.vs) != 1 || pi2.vs[0].Code != CodeDistribution {
		t.Fatalf("mismatch violations = %v", pi2.vs)
	}
}

func TestLineageNilSafe(t *testing.T) {
	if out := Lineage(nil); len(out) != 0 {
		t.Error("nil plan lineage")
	}
	if out := Lineage(&core.Plan{}); len(out) != 0 {
		t.Error("rootless plan lineage")
	}
}

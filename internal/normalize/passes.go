package normalize

import (
	"sort"

	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// --- Join transitivity closure (paper §4: "join transitivity closure
// detection ... allows the early filtering of lineitem, by joining it with
// part") ---

// transitivityClosure derives implied predicates within each region of
// inner/cross joins and filters: column equalities close transitively
// (a=b ∧ b=c ⇒ a=c) and constant restrictions propagate across equivalence
// classes (a=b ∧ a>5 ⇒ b>5). The new predicates widen the join orders the
// memo can produce and enable earlier filtering.
func (n *Normalizer) transitivityClosure(t *algebra.Tree) *algebra.Tree {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = n.transitivityClosure(c)
	}
	t = algebra.NewTree(t.Op, children...)

	if !isRegionRoot(t) {
		return t
	}
	conjs := collectRegionConjuncts(t)
	if len(conjs) < 2 {
		return t
	}
	uf := newUnionFind()
	seen := map[string]bool{}
	for _, c := range conjs {
		seen[c.Fingerprint()] = true
		if l, r, ok := algebra.EquiJoinSides(c); ok {
			uf.union(l, r)
		}
	}

	var added []algebra.Scalar
	// Close column equalities: link every member to its class leader.
	classes := uf.classes()
	for _, class := range classes {
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				eq := &algebra.Binary{
					Op: sqlparser.OpEq,
					L:  algebra.NewColRef(algebra.ColumnMeta{ID: class[i]}),
					R:  algebra.NewColRef(algebra.ColumnMeta{ID: class[j]}),
				}
				if fp := eq.Fingerprint(); !seen[fp] && !seen[flipEqFP(class[j], class[i])] {
					seen[fp] = true
					added = append(added, eq)
				}
			}
		}
	}
	// Propagate constant restrictions across classes.
	for _, c := range conjs {
		col, rest, ok := constRestriction(c)
		if !ok {
			continue
		}
		for _, member := range uf.classOf(col) {
			if member == col {
				continue
			}
			np := rest(member)
			if fp := np.Fingerprint(); !seen[fp] {
				seen[fp] = true
				added = append(added, np)
			}
		}
	}
	if len(added) == 0 {
		return t
	}
	out := algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(added)}, t)
	return pushdown(out)
}

func flipEqFP(a, b algebra.ColumnID) string {
	eq := &algebra.Binary{
		Op: sqlparser.OpEq,
		L:  algebra.NewColRef(algebra.ColumnMeta{ID: a}),
		R:  algebra.NewColRef(algebra.ColumnMeta{ID: b}),
	}
	return eq.Fingerprint()
}

// constRestriction recognizes `col cmp const`, `const cmp col` and
// col LIKE 'pattern', returning a constructor that re-targets the
// restriction onto another column of the same equivalence class.
func constRestriction(e algebra.Scalar) (algebra.ColumnID, func(algebra.ColumnID) algebra.Scalar, bool) {
	switch x := e.(type) {
	case *algebra.Binary:
		if !x.Op.IsComparison() {
			return 0, nil, false
		}
		if c, ok := x.L.(*algebra.ColRef); ok {
			if k, ok2 := x.R.(*algebra.Const); ok2 {
				// The copy must keep the constant's parameter slot: a
				// transitivity-derived restriction is implied by the original
				// one only while both carry the same literal, so a plan-cache
				// re-bind has to update them together.
				op, val, param := x.Op, k.Val, k.Param
				return c.ID, func(id algebra.ColumnID) algebra.Scalar {
					return &algebra.Binary{Op: op, L: algebra.NewColRef(algebra.ColumnMeta{ID: id, Type: val.Kind()}), R: &algebra.Const{Val: val, Param: param}}
				}, true
			}
		}
		if c, ok := x.R.(*algebra.ColRef); ok {
			if k, ok2 := x.L.(*algebra.Const); ok2 {
				op, val, param := x.Op.Flip(), k.Val, k.Param
				return c.ID, func(id algebra.ColumnID) algebra.Scalar {
					return &algebra.Binary{Op: op, L: algebra.NewColRef(algebra.ColumnMeta{ID: id, Type: val.Kind()}), R: &algebra.Const{Val: val, Param: param}}
				}, true
			}
		}
	case *algebra.Like:
		if c, ok := x.E.(*algebra.ColRef); ok && !x.Negated {
			pat := x.Pattern
			return c.ID, func(id algebra.ColumnID) algebra.Scalar {
				return &algebra.Like{E: algebra.NewColRef(algebra.ColumnMeta{ID: id, Type: types.KindString}), Pattern: pat}
			}, true
		}
	}
	return 0, nil, false
}

// isRegionRoot reports whether t is the top of a maximal inner-join region:
// an inner/cross join or filter whose parent is not one (approximated by
// running the closure only at nodes whose op is not itself consumed by a
// region; we simply run it at every region node and rely on fingerprint
// dedup to keep it idempotent).
func isRegionRoot(t *algebra.Tree) bool {
	switch op := t.Op.(type) {
	case *algebra.Select:
		return true
	case *algebra.Join:
		return op.Kind == algebra.JoinInner || op.Kind == algebra.JoinCross
	}
	return false
}

// collectRegionConjuncts gathers conjuncts from the contiguous region of
// inner joins and selects rooted at t.
func collectRegionConjuncts(t *algebra.Tree) []algebra.Scalar {
	var out []algebra.Scalar
	var walk func(node *algebra.Tree)
	walk = func(node *algebra.Tree) {
		switch op := node.Op.(type) {
		case *algebra.Select:
			out = append(out, algebra.Conjuncts(op.Filter)...)
			walk(node.Children[0])
		case *algebra.Join:
			if op.Kind == algebra.JoinInner || op.Kind == algebra.JoinCross {
				out = append(out, algebra.Conjuncts(op.On)...)
				walk(node.Children[0])
				walk(node.Children[1])
			}
		}
	}
	walk(t)
	return out
}

// unionFind over column IDs.
type unionFind struct {
	parent map[algebra.ColumnID]algebra.ColumnID
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[algebra.ColumnID]algebra.ColumnID{}}
}

func (u *unionFind) find(x algebra.ColumnID) algebra.ColumnID {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p != x {
		r := u.find(p)
		u.parent[x] = r
		return r
	}
	return x
}

func (u *unionFind) union(a, b algebra.ColumnID) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}

// classes returns every equivalence class with ≥2 members, sorted.
func (u *unionFind) classes() [][]algebra.ColumnID {
	byRoot := map[algebra.ColumnID][]algebra.ColumnID{}
	for x := range u.parent {
		r := u.find(x)
		byRoot[r] = append(byRoot[r], x)
	}
	var out [][]algebra.ColumnID
	for _, class := range byRoot {
		if len(class) < 2 {
			continue
		}
		sort.Slice(class, func(i, j int) bool { return class[i] < class[j] })
		out = append(out, class)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// classOf returns the sorted class containing col (possibly singleton).
func (u *unionFind) classOf(col algebra.ColumnID) []algebra.ColumnID {
	if _, ok := u.parent[col]; !ok {
		return []algebra.ColumnID{col}
	}
	r := u.find(col)
	var out []algebra.ColumnID
	for x := range u.parent {
		if u.find(x) == r {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Contradiction detection (paper §5) ---

// detectContradictions replaces provably-empty subtrees with empty Values
// relations: constant-false filters and per-column range contradictions
// such as x > 10 AND x < 5.
func detectContradictions(t *algebra.Tree) *algebra.Tree {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = detectContradictions(c)
	}
	t = algebra.NewTree(t.Op, children...)

	sel, ok := t.Op.(*algebra.Select)
	if !ok {
		return t
	}
	if isContradiction(sel.Filter) {
		return algebra.NewTree(&algebra.Values{Cols: t.OutputCols()})
	}
	return t
}

// isContradiction reports whether a conjunction can never be true.
func isContradiction(f algebra.Scalar) bool {
	type bound struct {
		lo, hi          types.Value
		loIncl, hiIncl  bool
		hasLo, hasHi    bool
		eq              types.Value
		hasEq, conflict bool
	}
	bounds := map[algebra.ColumnID]*bound{}
	get := func(id algebra.ColumnID) *bound {
		b, ok := bounds[id]
		if !ok {
			b = &bound{}
			bounds[id] = b
		}
		return b
	}
	for _, conj := range algebra.Conjuncts(f) {
		if c, ok := conj.(*algebra.Const); ok {
			if c.Val.IsNull() || (c.Val.Kind() == types.KindBool && !c.Val.Bool()) {
				return true
			}
			continue
		}
		bin, ok := conj.(*algebra.Binary)
		if !ok || !bin.Op.IsComparison() {
			continue
		}
		col, okc := bin.L.(*algebra.ColRef)
		k, okk := bin.R.(*algebra.Const)
		op := bin.Op
		if !okc || !okk {
			if col2, okc2 := bin.R.(*algebra.ColRef); okc2 {
				if k2, okk2 := bin.L.(*algebra.Const); okk2 {
					col, k, op = col2, k2, bin.Op.Flip()
					okc, okk = true, true
				}
			}
		}
		if !okc || !okk || k.Val.IsNull() {
			continue
		}
		b := get(col.ID)
		v := k.Val
		switch op {
		case sqlparser.OpEq:
			if b.hasEq && !types.Equal(b.eq, v) {
				b.conflict = true
			}
			b.eq, b.hasEq = v, true
		case sqlparser.OpGt, sqlparser.OpGe:
			incl := op == sqlparser.OpGe
			// Mixed-kind bounds (e.g. `c > 1 AND c > 'x'`) come straight
			// from user literals; keep the existing bound rather than
			// comparing incomparable values.
			if b.hasLo && !types.Comparable(v.Kind(), b.lo.Kind()) {
				continue
			}
			if !b.hasLo || types.Compare(v, b.lo) > 0 || (types.Compare(v, b.lo) == 0 && !incl) {
				b.lo, b.loIncl, b.hasLo = v, incl, true
			}
		case sqlparser.OpLt, sqlparser.OpLe:
			incl := op == sqlparser.OpLe
			if b.hasHi && !types.Comparable(v.Kind(), b.hi.Kind()) {
				continue
			}
			if !b.hasHi || types.Compare(v, b.hi) < 0 || (types.Compare(v, b.hi) == 0 && !incl) {
				b.hi, b.hiIncl, b.hasHi = v, incl, true
			}
		}
	}
	for _, b := range bounds {
		if b.conflict {
			return true
		}
		if b.hasEq {
			if b.hasLo && types.Comparable(b.eq.Kind(), b.lo.Kind()) &&
				(types.Compare(b.eq, b.lo) < 0 || (types.Compare(b.eq, b.lo) == 0 && !b.loIncl)) {
				return true
			}
			if b.hasHi && types.Comparable(b.eq.Kind(), b.hi.Kind()) &&
				(types.Compare(b.eq, b.hi) > 0 || (types.Compare(b.eq, b.hi) == 0 && !b.hiIncl)) {
				return true
			}
		}
		if b.hasLo && b.hasHi && types.Comparable(b.lo.Kind(), b.hi.Kind()) {
			c := types.Compare(b.lo, b.hi)
			if c > 0 || (c == 0 && (!b.loIncl || !b.hiIncl)) {
				return true
			}
		}
	}
	return false
}

// --- Redundant join elimination (paper §5) ---

// eliminateRedundantJoins removes provably-redundant self-joins: an inner
// join of two scans of the same table whose condition is exactly equality
// on the full primary key. The duplicate scan is dropped and its columns
// are remapped onto the surviving one.
func eliminateRedundantJoins(t *algebra.Tree) *algebra.Tree {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = eliminateRedundantJoins(c)
	}
	t = algebra.NewTree(t.Op, children...)

	j, ok := t.Op.(*algebra.Join)
	if !ok || j.Kind != algebra.JoinInner {
		return t
	}
	lg, lok := t.Children[0].Op.(*algebra.Get)
	rg, rok := t.Children[1].Op.(*algebra.Get)
	if !lok || !rok || lg.Table != rg.Table || len(lg.Table.PrimaryKey) == 0 {
		return t
	}
	// The condition must be a conjunction of equalities pairing identical
	// columns of the two scans, covering the whole primary key.
	mapping := map[algebra.ColumnID]algebra.ColumnID{} // right ID → left ID
	pkCovered := map[string]bool{}
	for _, conj := range algebra.Conjuncts(j.On) {
		l, r, ok := algebra.EquiJoinSides(conj)
		if !ok {
			return t
		}
		li, ri := colOrdinal(lg, l), colOrdinal(rg, r)
		if li < 0 || ri < 0 {
			li, ri = colOrdinal(lg, r), colOrdinal(rg, l)
			l, r = r, l
		}
		if li < 0 || ri < 0 || li != ri {
			return t
		}
		mapping[r] = l
		pkCovered[lg.Table.Columns[li].Name] = true
	}
	for _, pk := range lg.Table.PrimaryKey {
		if !pkCovered[pk] {
			return t
		}
	}
	// Remap every right column onto the matching left column via a
	// projection so upstream references keep working.
	defs := make([]algebra.ProjDef, 0, len(lg.Cols)+len(rg.Cols))
	for _, c := range lg.Cols {
		defs = append(defs, algebra.ProjDef{Expr: algebra.NewColRef(c), ID: c.ID, Name: c.Name})
	}
	for i, c := range rg.Cols {
		src := lg.Cols[i]
		defs = append(defs, algebra.ProjDef{Expr: algebra.NewColRef(src), ID: c.ID, Name: c.Name})
	}
	return algebra.NewTree(&algebra.Project{Defs: defs}, t.Children[0])
}

func colOrdinal(g *algebra.Get, id algebra.ColumnID) int {
	for i, c := range g.Cols {
		if c.ID == id {
			return i
		}
	}
	return -1
}

// --- Column pruning ---

// pruneColumns removes unreferenced columns from Get scans, projections and
// aggregations. Narrow intermediate schemas matter doubly in PDW: the DMS
// cost model charges by bytes moved.
func pruneColumns(t *algebra.Tree) *algebra.Tree {
	return prune(t, t.OutputColSet())
}

func prune(t *algebra.Tree, required algebra.ColSet) *algebra.Tree {
	switch op := t.Op.(type) {
	case *algebra.Get:
		var cols []algebra.ColumnMeta
		for _, c := range op.Cols {
			if required.Has(c.ID) {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = op.Cols[:1]
		}
		if len(cols) == len(op.Cols) {
			return t
		}
		return algebra.NewTree(&algebra.Get{Table: op.Table, Alias: op.Alias, Cols: cols})

	case *algebra.Values:
		return t

	case *algebra.Select:
		need := cloneSet(required)
		need.AddSet(algebra.ScalarCols(op.Filter))
		return algebra.NewTree(op, prune(t.Children[0], need))

	case *algebra.Project:
		var defs []algebra.ProjDef
		need := algebra.NewColSet()
		for _, d := range op.Defs {
			if required.Has(d.ID) {
				defs = append(defs, d)
				need.AddSet(algebra.ScalarCols(d.Expr))
			}
		}
		if len(defs) == 0 {
			defs = op.Defs[:1]
			need.AddSet(algebra.ScalarCols(defs[0].Expr))
		}
		return algebra.NewTree(&algebra.Project{Defs: defs}, prune(t.Children[0], need))

	case *algebra.Join:
		need := cloneSet(required)
		if op.On != nil {
			need.AddSet(algebra.ScalarCols(op.On))
		}
		left := prune(t.Children[0], intersect(need, t.Children[0].OutputColSet()))
		right := prune(t.Children[1], intersect(need, t.Children[1].OutputColSet()))
		return algebra.NewTree(op, left, right)

	case *algebra.GroupBy:
		var aggs []algebra.AggDef
		need := algebra.NewColSet(op.Keys...)
		for _, a := range op.Aggs {
			if required.Has(a.ID) {
				aggs = append(aggs, a)
				if a.Arg != nil {
					need.AddSet(algebra.ScalarCols(a.Arg))
				}
			}
		}
		return algebra.NewTree(&algebra.GroupBy{Keys: op.Keys, Aggs: aggs, Phase: op.Phase}, prune(t.Children[0], need))

	case *algebra.Sort:
		need := cloneSet(required)
		for _, k := range op.Keys {
			need.Add(k.ID)
		}
		return algebra.NewTree(op, prune(t.Children[0], need))

	case *algebra.UnionAll:
		return algebra.NewTree(op, prune(t.Children[0], required), prune(t.Children[1], required))

	default:
		return t
	}
}

func cloneSet(s algebra.ColSet) algebra.ColSet {
	out := algebra.NewColSet()
	out.AddSet(s)
	return out
}

func intersect(a, b algebra.ColSet) algebra.ColSet {
	out := algebra.NewColSet()
	for id := range a {
		if b.Has(id) {
			out.Add(id)
		}
	}
	return out
}

// dropIdentityProjects removes projections that pass through exactly their
// input columns in order, except at the root (which fixes output names).
func dropIdentityProjects(t *algebra.Tree) *algebra.Tree {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = dropInner(c)
	}
	return algebra.NewTree(t.Op, children...)
}

func dropInner(t *algebra.Tree) *algebra.Tree {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = dropInner(c)
	}
	t = algebra.NewTree(t.Op, children...)
	p, ok := t.Op.(*algebra.Project)
	if !ok {
		return t
	}
	in := t.Children[0].OutputCols()
	if len(p.Defs) != len(in) {
		return t
	}
	for i, d := range p.Defs {
		c, ok := d.Expr.(*algebra.ColRef)
		if !ok || c.ID != in[i].ID || d.ID != in[i].ID {
			return t
		}
	}
	return t.Children[0]
}

// Package comparechecked flags raw comparisons of dynamically-typed
// engine values outside the types package itself: calls to
// types.Compare, and ==/!= between two types.Value operands. Compare
// panics on cross-kind operands, so call sites must either use
// types.CompareChecked, guard the enclosing function with a
// types.Comparable check, or carry an explicit allow directive.
package comparechecked

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdwqo/internal/analysis"
)

const typesPkgPath = "pdwqo/internal/types"

// Analyzer is the comparechecked pass.
var Analyzer = &analysis.Analyzer{
	Name: "comparechecked",
	Doc:  "flag raw types.Value comparisons that bypass CompareChecked",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == typesPkgPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if callsComparable(pass, fd.Body) {
				// The function established the operands share a
				// comparable kind; raw Compare is then well-defined.
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// typesFunc reports whether the called function is the named function
// of the types package.
func typesFunc(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == typesPkgPath
}

func callsComparable(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && typesFunc(pass, call, "Comparable") {
			found = true
		}
		return !found
	})
	return found
}

// isValue reports whether the expression's type is types.Value.
func isValue(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Value" && obj.Pkg() != nil && obj.Pkg().Path() == typesPkgPath
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if typesFunc(pass, n, "Compare") {
				pass.Reportf(n.Pos(),
					"raw types.Compare can panic on mixed kinds; use types.CompareChecked or guard with types.Comparable")
			}
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) &&
				isValue(pass, n.X) && isValue(pass, n.Y) {
				pass.Reportf(n.Pos(),
					"raw %s on types.Value compares struct representations, not SQL semantics; use types.CompareChecked", n.Op)
			}
		}
		return true
	})
}

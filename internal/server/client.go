package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"pdwqo/internal/normalize"
)

// Result is a query result as decoded off the wire. Values arrive as
// their canonical string renderings (types.Value.String), which is the
// same form the difftest harness canonicalizes library results into —
// so a wire result and a library result compare byte for byte.
type Result struct {
	Columns []string
	Rows    [][]string
	// CacheStatus is the server-side plan cache outcome for this query
	// ("hit", "miss", "shared", or "" without a cache).
	CacheStatus string
	// Epoch is the catalog epoch the plan was current under.
	Epoch uint64
}

// Client is one session against a Server. It is safe for one goroutine;
// a session runs one query at a time by protocol, so share a pool of
// clients, not one client, across goroutines.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	// wmu serializes frame writes: a context watcher goroutine may inject
	// a Cancel frame while the request that started it is already on the
	// wire, and must not interleave with a later request's bytes.
	wmu sync.Mutex

	sessionID uint64
	epoch     uint64
}

// Dial connects to a server at addr and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient performs the handshake over an established connection (any
// net.Conn, including a net.Pipe end). On handshake failure the
// connection is closed.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	var e enc
	e.str(Magic)
	e.u16(Version)
	if err := c.send(OpHello, e.b); err != nil {
		conn.Close()
		return nil, err
	}
	op, p, err := ReadFrame(c.br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if op == OpError {
		conn.Close()
		return nil, decodeError(p)
	}
	if op != OpHelloAck {
		conn.Close()
		return nil, errf(CodeProtocol, "expected HelloAck, got %s", op)
	}
	d := &dec{b: p}
	ver := d.u16()
	c.sessionID = d.u64()
	c.epoch = d.u64()
	if derr := d.done(); derr != nil {
		conn.Close()
		return nil, derr
	}
	if ver != Version {
		conn.Close()
		return nil, errf(CodeHandshake, "server speaks version %d, want %d", ver, Version)
	}
	return c, nil
}

// SessionID is the server-assigned session identifier.
func (c *Client) SessionID() uint64 { return c.sessionID }

// Epoch is the catalog epoch snapshot taken at handshake.
func (c *Client) Epoch() uint64 { return c.epoch }

// Close says Bye and closes the connection.
func (c *Client) Close() error {
	c.send(OpBye, nil)
	return c.conn.Close()
}

// Query runs one ad-hoc SQL query. Cancelling ctx sends a Cancel frame
// and the call returns the server's typed CodeCancelled error.
func (c *Client) Query(ctx context.Context, sql string) (*Result, error) {
	var e enc
	e.str(sql)
	return c.roundTrip(ctx, OpQuery, e.b)
}

// Stmt is a prepared statement: a server-side parameterized template.
type Stmt struct {
	c     *Client
	id    uint32
	kinds []normalize.LitKind
}

// Prepare registers sql as a prepared statement on the session.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	var e enc
	e.str(sql)
	if err := c.send(OpPrepare, e.b); err != nil {
		return nil, err
	}
	op, p, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	switch op {
	case OpError:
		return nil, decodeError(p)
	case OpPrepareAck:
	default:
		return nil, errf(CodeProtocol, "expected PrepareAck, got %s", op)
	}
	d := &dec{b: p}
	st := &Stmt{c: c, id: d.u32()}
	d.u64() // epoch snapshot; informational
	n := int(d.u16())
	for i := 0; i < n && d.err() == nil; i++ {
		st.kinds = append(st.kinds, normalize.LitKind(d.u8()))
	}
	if derr := d.done(); derr != nil {
		return nil, derr
	}
	return st, nil
}

// NumParams is how many literal slots the statement binds.
func (s *Stmt) NumParams() int { return len(s.kinds) }

// Exec runs the statement with args bound to its literal slots in order.
// Accepted argument types per slot kind: int/int64 for integer slots,
// float64 for float slots, string for string (and date) slots. A raw
// string is also accepted for numeric slots and validated server-side.
func (s *Stmt) Exec(ctx context.Context, args ...any) (*Result, error) {
	if len(args) != len(s.kinds) {
		return nil, errf(CodeBadParams, "statement wants %d arguments, got %d", len(s.kinds), len(args))
	}
	var e enc
	e.u32(s.id)
	e.u16(uint16(len(args)))
	for i, a := range args {
		text, err := argText(a)
		if err != nil {
			return nil, errf(CodeBadParams, "argument %d: %v", i, err)
		}
		e.u8(uint8(s.kinds[i]))
		e.str(text)
	}
	return s.c.roundTrip(ctx, OpExecStmt, e.b)
}

// Close releases the statement server-side. It never blocks on a
// response; close is fire-and-forget by protocol.
func (s *Stmt) Close() error {
	var e enc
	e.u32(s.id)
	return s.c.send(OpCloseStmt, e.b)
}

// argText renders one argument as the raw text the wire carries; the
// server validates and renders it into a SQL literal.
func argText(a any) (string, error) {
	switch v := a.(type) {
	case int:
		return strconv.Itoa(v), nil
	case int64:
		return strconv.FormatInt(v, 10), nil
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	case string:
		return v, nil
	case time.Time:
		return v.Format("2006-01-02"), nil
	default:
		return "", fmt.Errorf("unsupported argument type %T", a)
	}
}

// roundTrip sends one query-like request and reads frames to its
// terminal Done or Error. While reading, a watcher goroutine turns ctx
// cancellation into a Cancel frame; the server then finishes the
// exchange with a typed CodeCancelled error, keeping the session usable.
func (c *Client) roundTrip(ctx context.Context, op Op, payload []byte) (*Result, error) {
	if err := c.send(op, payload); err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				c.send(OpCancel, nil)
			case <-stop:
			}
		}()
	}
	res := &Result{}
	sawHeader := false
	for {
		fop, p, err := ReadFrame(c.br)
		if err != nil {
			return nil, err
		}
		d := &dec{b: p}
		switch fop {
		case OpError:
			return nil, decodeError(p)
		case OpRowHeader:
			n := int(d.u16())
			for i := 0; i < n && d.err() == nil; i++ {
				res.Columns = append(res.Columns, d.str())
			}
			if derr := d.done(); derr != nil {
				return nil, derr
			}
			sawHeader = true
		case OpRowBatch:
			if !sawHeader {
				return nil, errf(CodeProtocol, "RowBatch before RowHeader")
			}
			n := int(d.u16())
			width := len(res.Columns)
			for i := 0; i < n && d.err() == nil; i++ {
				row := make([]string, width)
				for j := 0; j < width && d.err() == nil; j++ {
					row[j] = d.str()
				}
				res.Rows = append(res.Rows, row)
			}
			if derr := d.done(); derr != nil {
				return nil, derr
			}
		case OpDone:
			res.Epoch = d.u64()
			nrows := d.u64()
			res.CacheStatus = d.str()
			if derr := d.done(); derr != nil {
				return nil, derr
			}
			if !sawHeader || nrows != uint64(len(res.Rows)) {
				return nil, errf(CodeProtocol, "Done reports %d rows, stream carried %d", nrows, len(res.Rows))
			}
			return res, nil
		default:
			return nil, errf(CodeProtocol, "unexpected %s frame in result stream", fop)
		}
	}
}

// send writes one frame under the write lock.
func (c *Client) send(op Op, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.conn, op, payload)
}

// decodeError decodes an Error frame payload.
func decodeError(p []byte) error {
	d := &dec{b: p}
	code := Code(d.u16())
	msg := d.str()
	if err := d.done(); err != nil {
		return err
	}
	return &Error{Code: code, Msg: msg}
}

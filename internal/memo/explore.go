package memo

import (
	"sort"

	"pdwqo/internal/algebra"
)

// canonicalAnd rebuilds a conjunction with conjuncts sorted by fingerprint
// and exact duplicates removed, so that logically identical join conditions
// produced along different exploration paths deduplicate in the memo.
func canonicalAnd(conjs []algebra.Scalar) algebra.Scalar {
	sort.SliceStable(conjs, func(i, j int) bool {
		return conjs[i].Fingerprint() < conjs[j].Fingerprint()
	})
	out := conjs[:0]
	prev := ""
	for _, c := range conjs {
		fp := c.Fingerprint()
		if fp == prev {
			continue
		}
		prev = fp
		out = append(out, c)
	}
	return algebra.AndAll(out)
}

// Explore applies logical transformation rules to a fixpoint (or until the
// expression budget — the optimizer "timeout" of paper §3.1 — is hit):
//
//   - join commutativity (inner/cross)
//   - join associativity (inner/cross), generating all join orders
//   - push-join-below-group-by, the eager-aggregation shape the paper's
//     Q20 plan requires (join part⋈lineitem below the local aggregation)
func (m *Memo) Explore() {
	for round := 1; round <= 32; round++ {
		changed := false
		// Snapshot group count: rules may add groups.
		for gi := 1; gi < len(m.Groups); gi++ {
			g := m.Groups[gi]
			if g.exploredRound == round {
				continue
			}
			g.exploredRound = round
			// Snapshot expressions: rules append to g.Exprs.
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				if e.Physical {
					continue
				}
				if !m.budgetLeft() {
					return
				}
				if m.applyRules(g, e) {
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

func (m *Memo) applyRules(g *Group, e *GroupExpr) bool {
	changed := false
	if j, ok := e.Op.(*algebra.Join); ok {
		if j.Kind == algebra.JoinInner || j.Kind == algebra.JoinCross {
			changed = m.ruleJoinCommute(g, e, j) || changed
			changed = m.ruleJoinAssociate(g, e, j) || changed
			changed = m.ruleJoinBelowGroupBy(g, e, j) || changed
		}
	}
	return changed
}

// ruleJoinCommute adds Join(B,A) for Join(A,B).
func (m *Memo) ruleJoinCommute(g *Group, e *GroupExpr, j *algebra.Join) bool {
	ne := &GroupExpr{Op: &algebra.Join{Kind: j.Kind, On: j.On}, Children: []GroupID{e.Children[1], e.Children[0]}}
	_, added := m.InsertExpr(ne, g.ID)
	return added
}

// ruleJoinAssociate rewrites Join(Join(A,B), C) as Join(A, Join(B,C)),
// pooling and redistributing conjuncts by column coverage.
func (m *Memo) ruleJoinAssociate(g *Group, e *GroupExpr, top *algebra.Join) bool {
	leftGroup := m.Groups[e.Children[0]]
	cID := e.Children[1]
	cProps := m.Groups[cID].Props
	changed := false
	for _, le := range leftGroup.LogicalExprs() {
		inner, ok := le.Op.(*algebra.Join)
		if !ok || (inner.Kind != algebra.JoinInner && inner.Kind != algebra.JoinCross) {
			continue
		}
		aID, bID := le.Children[0], le.Children[1]
		aProps, bProps := m.Groups[aID].Props, m.Groups[bID].Props

		pool := append(algebra.Conjuncts(top.On), algebra.Conjuncts(inner.On)...)
		bcCols := algebra.NewColSet()
		for _, c := range bProps.OutCols {
			bcCols.Add(c.ID)
		}
		for _, c := range cProps.OutCols {
			bcCols.Add(c.ID)
		}
		var bcConds, topConds []algebra.Scalar
		for _, conj := range pool {
			if algebra.ScalarCols(conj).SubsetOf(bcCols) {
				bcConds = append(bcConds, conj)
			} else {
				topConds = append(topConds, conj)
			}
		}
		bcKind := algebra.JoinInner
		if len(bcConds) == 0 {
			bcKind = algebra.JoinCross
		}
		topKind := algebra.JoinInner
		if len(topConds) == 0 {
			topKind = algebra.JoinCross
		}
		if !m.budgetLeft() {
			return changed
		}
		bcGroup, _ := m.InsertExpr(&GroupExpr{
			Op:       &algebra.Join{Kind: bcKind, On: canonicalAnd(bcConds)},
			Children: []GroupID{bID, cID},
		}, 0)
		_, added := m.InsertExpr(&GroupExpr{
			Op:       &algebra.Join{Kind: topKind, On: canonicalAnd(topConds)},
			Children: []GroupID{aID, bcGroup},
		}, g.ID)
		changed = changed || added
		_ = aProps
	}
	return changed
}

// ruleJoinBelowGroupBy rewrites Join([Project](GroupBy(X)), R) into
// Project(GroupBy(Join(X, R))) when
//
//   - the join is inner,
//   - no join conjunct references an aggregate output (or a projection
//     computed from one), and
//   - R is provably unique on its equi-join columns (each X row matches at
//     most one R row, so group contents are unchanged).
//
// The new GroupBy's keys are the old keys plus R's output columns (R's
// columns are functionally determined by its unique join columns, so the
// group count is preserved). A projection restores the original output.
// An intervening Project (the shape decorrelation produces: the aggregate
// value wrapped in an expression, keys passed through) is looked through.
// This is the transform behind the paper's Q20 DSQL step 0/1: part ⋈
// lineitem runs below the (local) aggregation.
func (m *Memo) ruleJoinBelowGroupBy(g *Group, e *GroupExpr, top *algebra.Join) bool {
	if top.Kind != algebra.JoinInner {
		return false
	}
	leftGroup := m.Groups[e.Children[0]]
	rID := e.Children[1]
	rProps := m.Groups[rID].Props

	rCols := algebra.NewColSet()
	for _, c := range rProps.OutCols {
		rCols.Add(c.ID)
	}
	changed := false
	for _, le := range leftGroup.LogicalExprs() {
		var gb *algebra.GroupBy
		var gbChild GroupID
		var projDefs []algebra.ProjDef // nil when no intervening Project

		switch op := le.Op.(type) {
		case *algebra.GroupBy:
			gb, gbChild = op, le.Children[0]
		case *algebra.Project:
			// Look through the projection for a GroupBy in its child
			// group; require every join conjunct to reference only
			// identity pass-through columns.
			childGroup := m.Groups[le.Children[0]]
			for _, ce := range childGroup.LogicalExprs() {
				if inner, ok := ce.Op.(*algebra.GroupBy); ok {
					gb, gbChild = inner, ce.Children[0]
					projDefs = op.Defs
					break
				}
			}
		}
		if gb == nil || gb.Phase != algebra.AggComplete {
			continue
		}
		keySet := algebra.NewColSet(gb.Keys...)
		// Columns the join condition may touch on the left side: GB keys,
		// and for the Project case only keys passed through unchanged.
		joinableLeft := keySet
		if projDefs != nil {
			joinableLeft = algebra.NewColSet()
			for _, d := range projDefs {
				if c, ok := d.Expr.(*algebra.ColRef); ok && c.ID == d.ID && keySet.Has(d.ID) {
					joinableLeft.Add(d.ID)
				}
			}
		}
		allowed := algebra.NewColSet()
		allowed.AddSet(joinableLeft)
		allowed.AddSet(rCols)

		rJoinCols := algebra.NewColSet()
		valid := true
		for _, conj := range algebra.Conjuncts(top.On) {
			cols := algebra.ScalarCols(conj)
			if !cols.SubsetOf(allowed) {
				valid = false
				break
			}
			if a, b, ok := algebra.EquiJoinSides(conj); ok {
				if joinableLeft.Has(a) && rCols.Has(b) {
					rJoinCols.Add(b)
				} else if joinableLeft.Has(b) && rCols.Has(a) {
					rJoinCols.Add(a)
				}
			}
		}
		if !valid || !rProps.UniqueOn(rJoinCols) {
			continue
		}
		if !m.budgetLeft() {
			return changed
		}
		newKeys := append([]algebra.ColumnID{}, gb.Keys...)
		for _, c := range rProps.OutCols {
			if !keySet.Has(c.ID) {
				newKeys = append(newKeys, c.ID)
			}
		}
		joinGroup, _ := m.InsertExpr(&GroupExpr{
			Op:       &algebra.Join{Kind: algebra.JoinInner, On: top.On},
			Children: []GroupID{gbChild, rID},
		}, 0)
		gbGroup, _ := m.InsertExpr(&GroupExpr{
			Op:       &algebra.GroupBy{Keys: newKeys, Aggs: gb.Aggs},
			Children: []GroupID{joinGroup},
		}, 0)
		// Restore the original join output: left outputs (through the
		// original projection when present), then R outputs.
		var defs []algebra.ProjDef
		if projDefs != nil {
			defs = append(defs, projDefs...)
		} else {
			for _, c := range leftGroup.Props.OutCols {
				defs = append(defs, algebra.ProjDef{Expr: algebra.NewColRef(c), ID: c.ID, Name: c.Name})
			}
		}
		for _, c := range rProps.OutCols {
			defs = append(defs, algebra.ProjDef{Expr: algebra.NewColRef(c), ID: c.ID, Name: c.Name})
		}
		_, added := m.InsertExpr(&GroupExpr{
			Op:       &algebra.Project{Defs: defs},
			Children: []GroupID{gbGroup},
		}, g.ID)
		changed = changed || added
	}
	return changed
}

package stats

import (
	"math"
	"strings"

	"pdwqo/internal/types"
)

// Estimation primitives consumed by the serial optimizer to annotate MEMO
// groups with cardinalities (paper §2.5, component 2c). All selectivities
// are clamped to [0, 1]; defaults follow the classic System R constants
// when statistics are missing.

// Default selectivities for predicates with no usable statistics.
const (
	DefaultEqSel    = 0.01
	DefaultRangeSel = 1.0 / 3.0
	DefaultLikeSel  = 0.05
)

// Clamp bounds s into [lo, hi].
func Clamp(s, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, s)) }

// SelectivityEq estimates the fraction of rows where col = v.
func (c *Column) SelectivityEq(v types.Value) float64 {
	if c == nil || c.RowCount == 0 {
		return DefaultEqSel
	}
	if v.IsNull() {
		return 0 // col = NULL never qualifies
	}
	nonNull := c.RowCount - c.NullCount
	if nonNull <= 0 {
		return 0
	}
	// A literal of a kind incomparable with the column (reachable from
	// user-supplied IN lists like `intcol IN ('x')`) gets the default
	// selectivity — the histogram below assumes comparable bounds.
	if !c.Min.IsNull() && !types.Comparable(v.Kind(), c.Min.Kind()) {
		return DefaultEqSel
	}
	if !c.Min.IsNull() {
		if types.Compare(v, c.Min) < 0 || types.Compare(v, c.Max) > 0 {
			return 0
		}
	}
	// Locate the bucket holding v; assume uniformity within the bucket.
	prev := c.Min
	for _, b := range c.Buckets {
		if types.Compare(v, b.UpperBound) <= 0 {
			if b.NDV <= 0 {
				break
			}
			_ = prev
			return Clamp(b.RowCount/b.NDV/c.RowCount, 0, 1)
		}
		prev = b.UpperBound
	}
	if c.NDV > 0 {
		return Clamp(nonNull/c.NDV/c.RowCount, 0, 1)
	}
	return DefaultEqSel
}

// SelectivityRange estimates the fraction of rows in the (possibly
// half-open) interval. Nil bounds mean unbounded; incl* control closedness.
func (c *Column) SelectivityRange(lo, hi types.Value, incLo, incHi bool) float64 {
	if c == nil || c.RowCount == 0 || len(c.Buckets) == 0 {
		return DefaultRangeSel
	}
	if !lo.IsNull() && !types.Comparable(lo.Kind(), c.Min.Kind()) ||
		!hi.IsNull() && !types.Comparable(hi.Kind(), c.Min.Kind()) {
		return DefaultRangeSel
	}
	rows := 0.0
	prev := c.Min
	for i, b := range c.Buckets {
		bLo, bHi := prev, b.UpperBound
		if i == 0 {
			// First bucket includes its lower bound (the column min).
			rows += overlapRows(b, bLo, bHi, lo, hi, incLo, incHi, true)
		} else {
			rows += overlapRows(b, bLo, bHi, lo, hi, incLo, incHi, false)
		}
		prev = b.UpperBound
	}
	return Clamp(rows/c.RowCount, 0, 1)
}

// overlapRows estimates how many rows of bucket b (spanning (bLo, bHi], or
// [bLo, bHi] when closedLo) fall inside the query interval, interpolating
// linearly for numeric/date bounds. SelectivityRange already rejected
// kind-incomparable bounds, so raw ordering is well-defined here.
//
//pdwlint:allow comparechecked
func overlapRows(b Bucket, bLo, bHi, lo, hi types.Value, incLo, incHi, closedLo bool) float64 {
	_ = closedLo
	// Fully below or above the interval?
	if !lo.IsNull() {
		cmp := types.Compare(bHi, lo)
		if cmp < 0 || (cmp == 0 && !incLo) {
			return 0
		}
	}
	if !hi.IsNull() {
		cmp := types.Compare(bLo, hi)
		if cmp > 0 || (cmp == 0 && !incHi && b.NDV <= 1) {
			return 0
		}
	}
	fracLo, fracHi := 0.0, 1.0
	if !lo.IsNull() && types.Compare(lo, bLo) > 0 {
		fracLo = positionIn(bLo, bHi, lo)
	}
	if !hi.IsNull() && types.Compare(hi, bHi) < 0 {
		fracHi = positionIn(bLo, bHi, hi)
	}
	if fracHi < fracLo {
		return 0
	}
	return b.RowCount * (fracHi - fracLo)
}

// positionIn returns where v sits inside (lo, hi] as a fraction, using
// numeric interpolation where possible and 0.5 otherwise.
func positionIn(lo, hi, v types.Value) float64 {
	f := func(x types.Value) (float64, bool) {
		switch x.Kind() {
		case types.KindInt, types.KindFloat:
			return x.Float(), true
		case types.KindDate:
			return float64(x.DateDays()), true
		}
		return 0, false
	}
	a, ok1 := f(lo)
	b, ok2 := f(hi)
	x, ok3 := f(v)
	if !ok1 || !ok2 || !ok3 || b <= a {
		return 0.5
	}
	return Clamp((x-a)/(b-a), 0, 1)
}

// SelectivityLikePrefix estimates LIKE 'prefix%' as a range scan over the
// string domain (the paper's Q20 walk-through depends on the p_name LIKE
// 'forest%' predicate being recognized as highly selective).
func (c *Column) SelectivityLikePrefix(prefix string) float64 {
	if prefix == "" {
		return 1
	}
	if c == nil || c.RowCount == 0 || len(c.Buckets) == 0 {
		return DefaultLikeSel
	}
	hi := prefixUpperBound(prefix)
	return c.SelectivityRange(types.NewString(prefix), types.NewString(hi), true, false)
}

// prefixUpperBound returns the smallest string greater than every string
// with the given prefix.
func prefixUpperBound(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return prefix + "\xff"
}

// SelectivityIsNull estimates IS NULL.
func (c *Column) SelectivityIsNull() float64 {
	if c == nil || c.RowCount == 0 {
		return DefaultEqSel
	}
	return Clamp(c.NullCount/c.RowCount, 0, 1)
}

// JoinCardinality estimates |L ⋈ R| for an equijoin on columns with the
// given statistics, using the standard containment formula
// |L|·|R| / max(NDV_l, NDV_r).
func JoinCardinality(lRows, rRows float64, l, r *Column) float64 {
	d := 0.0
	if l != nil {
		d = math.Max(d, l.NDV)
	}
	if r != nil {
		d = math.Max(d, r.NDV)
	}
	if d <= 0 {
		d = math.Max(math.Min(lRows, rRows), 1)
	}
	return lRows * rRows / d
}

// DistinctAfterFilter scales a column NDV when its table has been filtered
// to `rows` of `total` rows, using the standard Yao/Cardenas approximation.
func DistinctAfterFilter(ndv, total, rows float64) float64 {
	if total <= 0 || ndv <= 0 {
		return math.Max(rows, 1)
	}
	if rows >= total {
		return ndv
	}
	// Expected distinct values in a sample of `rows` from `total` rows with
	// `ndv` distinct values.
	return ndv * (1 - math.Pow(1-rows/total, total/ndv))
}

// GroupCardinality estimates the number of groups when grouping `rows` rows
// (from a base of `total`) by columns with the given NDVs: product of NDVs
// capped by the row count.
func GroupCardinality(rows, total float64, ndvs []float64) float64 {
	if len(ndvs) == 0 {
		return 1
	}
	prod := 1.0
	for _, d := range ndvs {
		prod *= math.Max(DistinctAfterFilter(d, total, rows), 1)
		if prod > rows {
			return math.Max(rows, 1)
		}
	}
	return math.Max(math.Min(prod, rows), 1)
}

// MatchesLikePrefix evaluates s LIKE 'prefix%' at runtime; kept here so the
// estimator and executor share one definition of the predicate.
func MatchesLikePrefix(s, prefix string) bool { return strings.HasPrefix(s, prefix) }

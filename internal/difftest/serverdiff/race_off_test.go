//go:build !race

package serverdiff

const raceEnabled = false

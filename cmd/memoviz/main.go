// Command memoviz renders the optimizer's intermediate artifacts for a
// query in the style of the paper's Figure 3: the normalized logical tree,
// the serial MEMO (groups with logical and physical expressions), the
// exported XML (optionally), and the augmented distributed plan.
//
// Usage:
//
//	memoviz [-sf 0.01] [-nodes 8] [-xml] (-q "SELECT ..." | -tpch q20)
package main

import (
	"flag"
	"fmt"
	"os"

	"pdwqo"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		nodes    = flag.Int("nodes", 8, "compute nodes")
		seed     = flag.Int64("seed", 42, "generator seed")
		query    = flag.String("q", "", "SQL text")
		tpchName = flag.String("tpch", "", "named TPC-H query")
		showXML  = flag.Bool("xml", false, "dump the exported MEMO XML")
	)
	flag.Parse()

	sql := *query
	if *tpchName != "" {
		var ok bool
		sql, ok = pdwqo.TPCHQuery(*tpchName)
		if !ok {
			fail(fmt.Errorf("unknown TPC-H query %q", *tpchName))
		}
	}
	if sql == "" {
		// The paper's Figure 3 query by default.
		sql = `SELECT * FROM CUSTOMER C, ORDERS O
		       WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000`
	}

	db, err := pdwqo.OpenTPCH(*sf, *nodes, *seed)
	if err != nil {
		fail(err)
	}
	plan, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		fail(err)
	}

	fmt.Println("== normalized logical tree ==")
	fmt.Println(plan.Normalized)
	fmt.Println("== serial MEMO (Figure 3c style; L logical, P physical) ==")
	fmt.Println(plan.Memo)
	if *showXML {
		fmt.Println("== exported MEMO XML ==")
		os.Stdout.Write(plan.MemoXML)
		fmt.Println()
	}
	fmt.Println("== augmented distributed plan (Figure 3d) ==")
	fmt.Println(plan.Distributed.Root)
	fmt.Println("== DSQL (Figure 3e) ==")
	fmt.Println(plan.DSQL)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "memoviz:", err)
	os.Exit(1)
}

package qgen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdwqo/internal/catalog"
)

var update = flag.Bool("update", false, "re-bless the corpus goldens")

// TestGenerateDeterministic: the same spec generates byte-identical
// queries — SQL, DDL, data and fingerprint — on repeated calls.
func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range []Spec{
		{Topology: Star, Relations: 8, Seed: 7},
		{Topology: Chain, Relations: 12, Seed: 7},
		{Topology: Clique, Relations: 6, Seed: 7},
		{Topology: Mixed, Relations: 9, Seed: 7},
	} {
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if a.SQL != b.SQL {
			t.Errorf("%s: SQL differs across runs", spec.Name())
		}
		if a.DDL() != b.DDL() {
			t.Errorf("%s: DDL differs across runs", spec.Name())
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: fingerprint differs across runs", spec.Name())
		}
	}
}

// TestGenerateSeedSensitive: different seeds produce different workloads.
func TestGenerateSeedSensitive(t *testing.T) {
	a, err := Generate(Spec{Topology: Star, Relations: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Topology: Star, Relations: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct seeds generated identical queries")
	}
}

// TestGenerateErrors: invalid specs fail with diagnostics instead of
// generating garbage.
func TestGenerateErrors(t *testing.T) {
	for _, spec := range []Spec{
		{Topology: Star, Relations: 1, Seed: 1},
		{Topology: Star, Relations: 500, Seed: 1},
		{Topology: Topology("ring"), Relations: 8, Seed: 1},
		{Topology: Chain, Relations: 8, Seed: 1, Nodes: -2},
	} {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %+v: expected error", spec)
		}
	}
}

// TestShapeInvariants: the emitted shape matches the topology contract —
// edge counts, connectivity, referenced tables, filter selectivities and
// a coherent SQL rendering.
func TestShapeInvariants(t *testing.T) {
	for _, spec := range Corpus() {
		q, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		n := spec.Relations
		if len(q.Shape.Tables) != n || len(q.Tables) != n {
			t.Fatalf("%s: expected %d tables, got %d/%d", q.Name, n, len(q.Shape.Tables), len(q.Tables))
		}
		wantEdges := n - 1
		switch spec.Topology {
		case Clique:
			wantEdges = n * (n - 1) / 2
		case Mixed:
			for i := n/2 + 1; i < n; i++ {
				if i%3 == 0 {
					wantEdges++
				}
			}
		}
		if len(q.Shape.Edges) != wantEdges {
			t.Errorf("%s: expected %d edges, got %d", q.Name, wantEdges, len(q.Shape.Edges))
		}
		// The join graph must be connected: the difftest property "no
		// cross join when a predicate edge exists" relies on it.
		adj := map[string][]string{}
		for _, e := range q.Shape.Edges {
			adj[e.LeftTable] = append(adj[e.LeftTable], e.RightTable)
			adj[e.RightTable] = append(adj[e.RightTable], e.LeftTable)
		}
		seen := map[string]bool{q.Shape.Tables[0]: true}
		stack := []string{q.Shape.Tables[0]}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if len(seen) != n {
			t.Errorf("%s: join graph disconnected: reached %d of %d tables", q.Name, len(seen), n)
		}
		for _, f := range q.Shape.Filters {
			if f.Selectivity <= 0 || f.Selectivity > 1 {
				t.Errorf("%s: filter %s.%s selectivity %g out of (0,1]", q.Name, f.Table, f.Column, f.Selectivity)
			}
			want := float64(f.Bound+1) / 1000
			if f.Selectivity != want {
				t.Errorf("%s: filter %s selectivity %g, want %g", q.Name, f.Column, f.Selectivity, want)
			}
			if !strings.Contains(q.SQL, fmt.Sprintf("%s <= %d", f.Column, f.Bound)) {
				t.Errorf("%s: filter %s missing from SQL", q.Name, f.Column)
			}
		}
		for _, name := range q.Shape.Tables {
			if !strings.Contains(q.SQL, name) {
				t.Errorf("%s: table %s missing from SQL", q.Name, name)
			}
		}
		if q.Shape.GroupBy != "" && !strings.Contains(q.SQL, "GROUP BY "+q.Shape.GroupBy) {
			t.Errorf("%s: GROUP BY %s missing from SQL", q.Name, q.Shape.GroupBy)
		}
		// Replicated metadata agrees with the catalog, and row counts
		// match the data.
		repl := map[string]bool{}
		for _, name := range q.Shape.Replicated {
			repl[name] = true
		}
		for _, tab := range q.Tables {
			if got := tab.Dist.Kind == catalog.DistReplicated; got != repl[tab.Name] {
				t.Errorf("%s: table %s replicated=%t disagrees with shape", q.Name, tab.Name, got)
			}
			if len(q.Data[tab.Name]) == 0 {
				t.Errorf("%s: table %s has no rows", q.Name, tab.Name)
			}
		}
	}
}

// TestShell: the generated catalog passes the shell database's own
// validation (unique columns, valid distribution and key columns).
func TestShell(t *testing.T) {
	for _, spec := range Corpus() {
		q, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		shell, err := q.Shell()
		if err != nil {
			t.Fatalf("%s: shell: %v", q.Name, err)
		}
		if got := len(shell.Tables()); got != spec.Relations {
			t.Fatalf("%s: shell has %d tables, want %d", q.Name, got, spec.Relations)
		}
	}
}

// TestCorpusGolden pins the corpus: names, SQL text and fingerprints must
// match the checked-in goldens exactly. Re-bless with -update after an
// intentional generator change.
func TestCorpusGolden(t *testing.T) {
	var manifest strings.Builder
	for _, spec := range Corpus() {
		q, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		fmt.Fprintf(&manifest, "%s %s\n", q.Fingerprint(), q.Name)
		sqlPath := filepath.Join("testdata", "corpus", q.Name+".sql")
		if *update {
			if err := os.WriteFile(sqlPath, []byte(q.SQL+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(sqlPath)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update): %v", q.Name, err)
		}
		if string(want) != q.SQL+"\n" {
			t.Errorf("%s: generated SQL drifted from golden %s", q.Name, sqlPath)
		}
	}
	manifestPath := filepath.Join("testdata", "corpus", "MANIFEST")
	if *update {
		if err := os.WriteFile(manifestPath, []byte(manifest.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("missing corpus manifest (run with -update): %v", err)
	}
	if string(want) != manifest.String() {
		t.Error("corpus fingerprints drifted from testdata/corpus/MANIFEST (re-bless with -update after intentional changes)")
	}
}

// TestCorpusBuckets: the corpus covers every topology at every size
// bucket, and the small/large split is exact.
func TestCorpusBuckets(t *testing.T) {
	all := Corpus()
	if len(all) != len(SmallCorpus())+len(LargeCorpus()) {
		t.Fatal("small/large split does not partition the corpus")
	}
	perTopo := map[Topology]int{}
	for _, s := range all {
		perTopo[s.Topology]++
	}
	for _, topo := range Topologies() {
		if perTopo[topo] != len(all)/len(Topologies()) {
			t.Errorf("topology %s has %d specs, want %d", topo, perTopo[topo], len(all)/len(Topologies()))
		}
	}
	for _, s := range SmallCorpus() {
		if s.Relations > 10 {
			t.Errorf("small corpus contains %d-relation spec", s.Relations)
		}
	}
	for _, s := range LargeCorpus() {
		if s.Relations <= 10 {
			t.Errorf("large corpus contains %d-relation spec", s.Relations)
		}
	}
}

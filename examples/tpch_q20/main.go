// Command tpch_q20 reproduces the paper's §4 walk-through (Figure 7): the
// parallel plan for TPC-H Q20. The expected shape — a broadcast of the
// 'forest%'-filtered part table, a partial/final aggregation split around a
// shuffle, and replicated supplier/nation joined without movement — is
// printed as DSQL steps the way Figure 7 lays them out.
package main

import (
	"fmt"
	"log"

	"pdwqo"
)

func main() {
	db, err := pdwqo.OpenTPCH(0.005, 8, 42)
	if err != nil {
		log.Fatal(err)
	}

	sql, ok := pdwqo.TPCHQuery("q20")
	if !ok {
		log.Fatal("q20 missing from the suite")
	}
	fmt.Println("=== TPC-H Q20 (verbatim from the paper) ===")
	fmt.Println(sql)

	plan, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== optimizer output ===")
	fmt.Println(plan.Explain())

	fmt.Println("=== data movement summary (compare with Figure 7) ===")
	for kind, n := range plan.Moves() {
		fmt.Printf("  %-22s ×%d\n", kind, n)
	}

	res, err := db.ExecutePlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== executed: %d qualifying suppliers ===\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Println(row)
	}
}

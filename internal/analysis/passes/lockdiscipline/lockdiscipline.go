// Package lockdiscipline enforces the repo's mutex convention: in a
// struct with a field named mu of type sync.Mutex or sync.RWMutex, the
// fields declared after mu are guarded by it. A method that touches a
// guarded field through its receiver must acquire the mutex (mu.Lock or
// mu.RLock) somewhere in its body, carry the *Locked name suffix
// marking it caller-locked, or carry an allow directive. The check is
// lexical, not a happens-before proof — it catches the common bug of a
// new accessor added without the lock, which the race detector only
// sees under a racing workload.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"pdwqo/internal/analysis"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag methods touching mutex-guarded fields without acquiring the mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, guarded, fd)
		}
	}
	return nil
}

// guardedFields maps each struct type name to the set of fields
// declared after its mu mutex field.
func guardedFields(pass *analysis.Pass) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			afterMu := false
			fields := map[string]bool{}
			for _, fld := range st.Fields.List {
				if afterMu {
					for _, name := range fld.Names {
						fields[name.Name] = true
					}
					continue
				}
				for _, name := range fld.Names {
					if name.Name == "mu" && isSyncMutex(pass, fld.Type) {
						afterMu = true
					}
				}
			}
			if afterMu && len(fields) > 0 {
				out[ts.Name.Name] = fields
			}
			return true
		})
	}
	return out
}

func isSyncMutex(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// recvInfo returns the receiver identifier and its struct type name.
func recvInfo(pass *analysis.Pass, fd *ast.FuncDecl) (*ast.Ident, string) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, ""
	}
	id := fd.Recv.List[0].Names[0]
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return id, named.Obj().Name()
}

func checkMethod(pass *analysis.Pass, guarded map[string]map[string]bool, fd *ast.FuncDecl) {
	recv, typeName := recvInfo(pass, fd)
	if recv == nil || guarded[typeName] == nil {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		// Convention: the caller holds the mutex.
		return
	}
	recvObj := pass.TypesInfo.Defs[recv]
	fields := guarded[typeName]
	locks := false
	type access struct {
		sel  *ast.SelectorExpr
		name string
	}
	var accesses []access
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.mu.Lock() / recv.mu.RLock() renders as a selector chain:
		// Sel=Lock, X = recv.mu.
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
			if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
				inner.Sel.Name == "mu" && isRecv(pass, recvObj, inner.X) {
				locks = true
			}
		}
		if isRecv(pass, recvObj, sel.X) && fields[sel.Sel.Name] {
			accesses = append(accesses, access{sel, sel.Sel.Name})
		}
		return true
	})
	if locks {
		return
	}
	reported := map[string]bool{}
	for _, a := range accesses {
		if reported[a.name] {
			continue
		}
		reported[a.name] = true
		pass.Reportf(a.sel.Pos(),
			"%s.%s is declared after mu and so guarded by it, but %s does not lock mu (suffix the name with Locked if the caller holds it)",
			typeName, a.name, fd.Name.Name)
	}
}

func isRecv(pass *analysis.Pass, recvObj types.Object, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && recvObj != nil && pass.TypesInfo.Uses[id] == recvObj
}

// Package tpch provides the TPC-H substrate used throughout the
// reproduction: the schema with the paper's table placement (customer
// hash-partitioned on c_custkey, orders on o_orderkey, lineitem on
// l_orderkey, supplier/nation/region replicated — matching the
// [supplier_repl] table visible in the paper's Figure 7 SQL), a
// deterministic dbgen-like data generator, per-node statistics building
// with local→global merge (paper §2.2), and the adapted query suite.
package tpch

import (
	"pdwqo/internal/catalog"
	"pdwqo/internal/types"
)

// Tables returns the TPC-H shell tables with the paper's placement. The
// returned tables carry no statistics; see BuildShell.
func Tables() []*catalog.Table {
	return []*catalog.Table{
		{
			Name: "region",
			Columns: []catalog.Column{
				{Name: "r_regionkey", Type: types.KindInt},
				{Name: "r_name", Type: types.KindString},
			},
			PrimaryKey: []string{"r_regionkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistReplicated},
		},
		{
			Name: "nation",
			Columns: []catalog.Column{
				{Name: "n_nationkey", Type: types.KindInt},
				{Name: "n_name", Type: types.KindString},
				{Name: "n_regionkey", Type: types.KindInt},
			},
			PrimaryKey: []string{"n_nationkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistReplicated},
		},
		{
			Name: "supplier",
			Columns: []catalog.Column{
				{Name: "s_suppkey", Type: types.KindInt},
				{Name: "s_name", Type: types.KindString},
				{Name: "s_address", Type: types.KindString},
				{Name: "s_nationkey", Type: types.KindInt},
				{Name: "s_acctbal", Type: types.KindFloat},
			},
			PrimaryKey: []string{"s_suppkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistReplicated},
		},
		{
			Name: "customer",
			Columns: []catalog.Column{
				{Name: "c_custkey", Type: types.KindInt},
				{Name: "c_name", Type: types.KindString},
				{Name: "c_nationkey", Type: types.KindInt},
				{Name: "c_acctbal", Type: types.KindFloat},
				{Name: "c_mktsegment", Type: types.KindString},
			},
			PrimaryKey: []string{"c_custkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "c_custkey"},
		},
		{
			Name: "orders",
			Columns: []catalog.Column{
				{Name: "o_orderkey", Type: types.KindInt},
				{Name: "o_custkey", Type: types.KindInt},
				{Name: "o_orderstatus", Type: types.KindString},
				{Name: "o_totalprice", Type: types.KindFloat},
				{Name: "o_orderdate", Type: types.KindDate},
				{Name: "o_orderpriority", Type: types.KindString},
			},
			PrimaryKey: []string{"o_orderkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "o_orderkey"},
		},
		{
			Name: "lineitem",
			Columns: []catalog.Column{
				{Name: "l_orderkey", Type: types.KindInt},
				{Name: "l_partkey", Type: types.KindInt},
				{Name: "l_suppkey", Type: types.KindInt},
				{Name: "l_linenumber", Type: types.KindInt},
				{Name: "l_quantity", Type: types.KindFloat},
				{Name: "l_extendedprice", Type: types.KindFloat},
				{Name: "l_discount", Type: types.KindFloat},
				{Name: "l_tax", Type: types.KindFloat},
				{Name: "l_returnflag", Type: types.KindString},
				{Name: "l_linestatus", Type: types.KindString},
				{Name: "l_shipdate", Type: types.KindDate},
				{Name: "l_commitdate", Type: types.KindDate},
				{Name: "l_receiptdate", Type: types.KindDate},
				{Name: "l_shipmode", Type: types.KindString},
			},
			PrimaryKey: []string{"l_orderkey", "l_linenumber"},
			Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "l_orderkey"},
		},
		{
			Name: "part",
			Columns: []catalog.Column{
				{Name: "p_partkey", Type: types.KindInt},
				{Name: "p_name", Type: types.KindString},
				{Name: "p_brand", Type: types.KindString},
				{Name: "p_type", Type: types.KindString},
				{Name: "p_size", Type: types.KindInt},
				{Name: "p_container", Type: types.KindString},
				{Name: "p_retailprice", Type: types.KindFloat},
			},
			PrimaryKey: []string{"p_partkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "p_partkey"},
		},
		{
			Name: "partsupp",
			Columns: []catalog.Column{
				{Name: "ps_partkey", Type: types.KindInt},
				{Name: "ps_suppkey", Type: types.KindInt},
				{Name: "ps_availqty", Type: types.KindInt},
				{Name: "ps_supplycost", Type: types.KindFloat},
			},
			PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
			Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "ps_partkey"},
		},
	}
}

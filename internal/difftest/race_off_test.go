//go:build !race

package difftest

const raceEnabled = false

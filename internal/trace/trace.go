// Package trace is the observability layer of the pipeline: a lightweight
// span tracer plus a counter registry, threaded through compilation
// (parse → normalize → MEMO → XML → enumeration → DSQL generation) and
// execution (per-step spans carrying the engine's StepMetric payloads).
//
// The tracer is nil-disabled: a nil *Tracer is the "off" tracer, every
// method on it (and on the Active handles it returns) no-ops without
// taking a lock, reading the clock, or allocating. The hot execution path
// therefore pays nothing when tracing is off — a property locked down by
// TestDisabledTracerZeroAlloc and BenchmarkSpanDisabled.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// SpanID identifies a recorded span; 0 is "no span" (the root parent).
type SpanID int

// Attr is one key/value annotation on a span. Exactly one of Val/Str is
// meaningful, per IsStr.
type Attr struct {
	Key   string `json:"key"`
	Val   int64  `json:"val,omitempty"`
	Str   string `json:"str,omitempty"`
	IsStr bool   `json:"-"`
}

// StepStats is the execution payload of one DSQL step span, mirroring the
// engine's StepMetric (the engine converts; trace stays dependency-free).
type StepStats struct {
	Step         int           `json:"step"`
	Move         string        `json:"move,omitempty"`
	IsMove       bool          `json:"isMove"`
	Rows         int64         `json:"rows"`
	Bytes        int64         `json:"bytes"`
	HashedRows   int64         `json:"hashedRows,omitempty"`
	MaxNodeBytes int64         `json:"maxNodeBytes,omitempty"`
	Attempts     int           `json:"attempts"`
	Duration     time.Duration `json:"durationNs"`
	// LocalOps/LocalRows are the node-local evaluation tallies behind the
	// step (operators run, rows produced), summed over source nodes.
	LocalOps  int64 `json:"localOps,omitempty"`
	LocalRows int64 `json:"localRows,omitempty"`
	// LocalBatches counts the column batches the vectorized executor
	// emitted (zero under the row engine).
	LocalBatches int64 `json:"localBatches,omitempty"`
}

// Span is one recorded interval (or instantaneous event, Dur == 0).
type Span struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"startNs"` // offset from the tracer epoch
	Dur    time.Duration `json:"durNs"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Step   *StepStats    `json:"step,omitempty"`
	Err    string        `json:"err,omitempty"`
}

// Tracer records spans and counters for one pipeline run. Safe for
// concurrent use; a nil Tracer is the disabled tracer.
type Tracer struct {
	epoch time.Time // immutable after New
	reg   *Registry // immutable after New; Registry is internally synchronized
	mu    sync.Mutex
	spans []Span
}

// New builds an enabled tracer with a fresh counter registry.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), reg: NewRegistry()}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Counters exposes the tracer's registry (nil when disabled; the Registry
// methods are themselves nil-safe, so callers need not check).
func (t *Tracer) Counters() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Active is a live span handle. The zero Active (from a disabled tracer)
// no-ops everywhere.
type Active struct {
	t     *Tracer
	id    SpanID
	start time.Time
}

// Begin starts a root-level span.
func (t *Tracer) Begin(name string) Active { return t.BeginUnder(0, name) }

// BeginUnder starts a span as a child of parent (0 = root).
func (t *Tracer) BeginUnder(parent SpanID, name string) Active {
	if t == nil {
		return Active{}
	}
	now := time.Now()
	t.mu.Lock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: now.Sub(t.epoch)})
	t.mu.Unlock()
	return Active{t: t, id: id, start: now}
}

// Event records an instantaneous child span.
func (t *Tracer) Event(parent SpanID, name string) {
	if t == nil {
		return
	}
	t.BeginUnder(parent, name)
}

// ID returns the span's identity for parenting children (0 when disabled).
func (a Active) ID() SpanID { return a.id }

// End closes the span, recording its duration.
func (a Active) End() {
	if a.t == nil {
		return
	}
	d := time.Since(a.start)
	a.t.mu.Lock()
	a.t.spans[a.id-1].Dur = d
	a.t.mu.Unlock()
}

// Int annotates the span with an integer attribute.
func (a Active) Int(key string, v int64) {
	if a.t == nil {
		return
	}
	a.t.mu.Lock()
	sp := &a.t.spans[a.id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: v})
	a.t.mu.Unlock()
}

// Str annotates the span with a string attribute.
func (a Active) Str(key, v string) {
	if a.t == nil {
		return
	}
	a.t.mu.Lock()
	sp := &a.t.spans[a.id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v, IsStr: true})
	a.t.mu.Unlock()
}

// SetStep attaches a step-execution payload to the span.
func (a Active) SetStep(s StepStats) {
	if a.t == nil {
		return
	}
	// Copy inside the enabled branch only: taking the parameter's address
	// directly would force it to the heap even on the disabled path,
	// breaking the zero-allocation contract.
	c := s
	a.t.mu.Lock()
	a.t.spans[a.id-1].Step = &c
	a.t.mu.Unlock()
}

// SetErr records the span's failure; nil clears nothing and no-ops.
func (a Active) SetErr(err error) {
	if a.t == nil || err == nil {
		return
	}
	msg := err.Error()
	a.t.mu.Lock()
	a.t.spans[a.id-1].Err = msg
	a.t.mu.Unlock()
}

// Spans returns a deep copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if len(out[i].Attrs) > 0 {
			out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
		}
		if out[i].Step != nil {
			s := *out[i].Step
			out[i].Step = &s
		}
	}
	return out
}

// StepSpans returns copies of the spans carrying step payloads, in record
// (= serial step execution) order.
func (t *Tracer) StepSpans() []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Step != nil {
			out = append(out, s)
		}
	}
	return out
}

// String renders an attribute for text output.
func (a Attr) String() string {
	if a.IsStr {
		return fmt.Sprintf("%s=%q", a.Key, a.Str)
	}
	return fmt.Sprintf("%s=%d", a.Key, a.Val)
}

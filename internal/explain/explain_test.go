package explain

import (
	"math"
	"strings"
	"testing"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
)

// fakeInput builds a tiny synthetic plan: one shuffle move feeding a
// return step, enough to exercise every render path without a database.
func fakeInput() Input {
	leaf := &core.Option{
		Op:   &algebra.Get{Table: &catalog.Table{Name: "orders"}},
		Dist: core.HashOn(1), Rows: 100, Width: 8,
	}
	move := &core.Option{
		Move:   &core.MoveSpec{Kind: cost.Shuffle, Col: 2},
		Inputs: []*core.Option{leaf},
		Dist:   core.HashOn(2), Rows: 100, Width: 8, DMSCost: 800,
	}
	return Input{
		SQL:  "SELECT 1",
		Plan: &core.Plan{Root: move, TotalCost: 800, Groups: 2, OptionsConsidered: 10, OptionsRetained: 4},
		DSQL: &dsql.Plan{Steps: []dsql.Step{
			{ID: 0, Kind: dsql.StepMove, SQL: "SELECT a\nFROM t", Where: core.DistHash,
				MoveKind: cost.Shuffle, HashCol: "c2", Dest: "TEMP_ID_1",
				Rows: 100, Width: 8, MoveCost: 800},
			{ID: 1, Kind: dsql.StepReturn, SQL: "SELECT * FROM [tempdb].[TEMP_ID_1]",
				Where: core.DistSingle, Rows: 100, Width: 8},
		}},
	}
}

func TestRenderExplainText(t *testing.T) {
	out, err := Render(fakeInput(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cost=800 groups=2 options considered=10 retained=4",
		"SHUFFLE(c2)",
		"Get(orders)",
		"step 0: DMS SHUFFLE(c2) -> TEMP_ID_1  on distributed  [est_rows=100 est_bytes=800 est_cost=800]",
		"step 1: RETURN  on single-node",
		"    FROM t", // multi-line SQL stays indented
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "actual:") || strings.Contains(out, "analyze summary") {
		t.Errorf("plain EXPLAIN must not include ANALYZE sections:\n%s", out)
	}
}

func TestRenderAnalyzeText(t *testing.T) {
	in := fakeInput()
	in.Actuals = []engine.StepMetric{
		{StepID: 0, IsMove: true, Move: cost.Shuffle, Rows: 50, Bytes: 400, Attempts: 2, Duration: time.Millisecond},
		{StepID: 1, Rows: 50, Bytes: 400, Attempts: 1},
	}
	in.Retries = 1
	in.Elapsed = 5 * time.Millisecond
	out, err := Render(in, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"actual: rows=50 bytes=400 attempts=2 time=1ms q_rows=2 q_bytes=2",
		"-- analyze summary",
		"elapsed=5ms steps=2/2 bytes_moved=400 retries=1 faults=0",
		"move q-error (rows):  n=1 mean=2 max=2",
		"move q-error (bytes): n=1 mean=2 max=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestRenderAnalyzeZeroEstimateMove is the regression seed for the
// EstBytes=0 edge: a move step the optimizer predicted empty (0 rows ×
// 0 width, e.g. a detected contradiction) that nonetheless produced
// rows. Its q-errors are unbounded; they must be counted separately, not
// fold the whole summary mean to inf (or, before the one-zero guard,
// divide by zero).
func TestRenderAnalyzeZeroEstimateMove(t *testing.T) {
	in := fakeInput()
	in.DSQL.Steps = append([]dsql.Step{
		{ID: 2, Kind: dsql.StepMove, SQL: "SELECT b FROM u", Where: core.DistHash,
			MoveKind: cost.Broadcast, Dest: "TEMP_ID_2", Rows: 0, Width: 0},
	}, in.DSQL.Steps...)
	in.Actuals = []engine.StepMetric{
		{StepID: 2, IsMove: true, Move: cost.Broadcast, Rows: 7, Bytes: 56, Attempts: 1},
		{StepID: 0, IsMove: true, Move: cost.Shuffle, Rows: 50, Bytes: 400, Attempts: 1},
		{StepID: 1, Rows: 50, Bytes: 400, Attempts: 1},
	}
	out, err := Render(in, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"q_rows=inf q_bytes=inf", // the zero-estimate step itself
		// the finite step (q=2) must still dominate the mean instead of
		// the unbounded one absorbing it
		"move q-error (rows):  n=2 mean=2 max=inf unbounded=1",
		"move q-error (bytes): n=2 mean=2 max=inf unbounded=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ANALYZE missing %q:\n%s", want, out)
		}
	}

	jout, err := Render(in, Options{Analyze: true, JSON: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"qRowsMean": 2`, `"qRowsMax": -1`, `"qRowsUnbounded": 1`,
		`"qBytesMean": 2`, `"qBytesUnbounded": 1`,
	} {
		if !strings.Contains(jout, want) {
			t.Errorf("JSON ANALYZE missing %q:\n%s", want, jout)
		}
	}
}

// TestRenderAnalyzeAllUnbounded covers the other end of the edge: every
// executed move had a one-side-zero estimate, so there is no finite
// factor at all and the mean itself must render as inf, not NaN.
func TestRenderAnalyzeAllUnbounded(t *testing.T) {
	in := fakeInput()
	in.DSQL.Steps[0].Rows = 0
	in.DSQL.Steps[0].Width = 0
	in.Actuals = []engine.StepMetric{
		{StepID: 0, IsMove: true, Move: cost.Shuffle, Rows: 50, Bytes: 400, Attempts: 1},
	}
	out, err := Render(in, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"move q-error (rows):  n=1 mean=inf max=inf unbounded=1",
		"move q-error (bytes): n=1 mean=inf max=inf unbounded=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ANALYZE missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("summary must never render NaN:\n%s", out)
	}
}

func TestRenderAnalyzeIncompleteExecution(t *testing.T) {
	in := fakeInput()
	in.Actuals = nil // execution failed before any step completed
	out, err := Render(in, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actual: (step did not complete)") {
		t.Errorf("missing incomplete-step marker:\n%s", out)
	}
	if !strings.Contains(out, "steps=0/2") {
		t.Errorf("summary should count 0 executed steps:\n%s", out)
	}
	if !strings.Contains(out, "move q-error: no move steps executed") {
		t.Errorf("missing empty q-error note:\n%s", out)
	}
}

func TestRenderJSONAnalyze(t *testing.T) {
	in := fakeInput()
	in.Actuals = []engine.StepMetric{
		{StepID: 0, IsMove: true, Move: cost.Shuffle, Rows: 100, Bytes: 800, Attempts: 1},
	}
	out, err := Render(in, Options{Analyze: true, JSON: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"kind": "move"`, `"move": "SHUFFLE"`, `"estBytes": 800`,
		`"actual"`, `"qBytes": 1`, `"analyze"`, `"bytesMoved": 800`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMissingPlan(t *testing.T) {
	if _, err := Render(Input{}, Options{}); err == nil {
		t.Error("Render must reject a missing plan")
	}
}

func TestQErrorHelpers(t *testing.T) {
	if got := fmtQ(math.Inf(1)); got != "inf" {
		t.Errorf("fmtQ(+Inf) = %q", got)
	}
	if got := fmtQ(1.5); got != "1.5" {
		t.Errorf("fmtQ(1.5) = %q", got)
	}
	if m := maxOf([]float64{1, 3, 2}); m != 3 {
		t.Errorf("maxOf = %v", m)
	}
	if p := qPtr(math.NaN()); p != nil {
		t.Error("qPtr(NaN) should be nil")
	}
	if p := qPtr(math.Inf(1)); p == nil || *p != -1 {
		t.Error("qPtr(+Inf) should box the -1 sentinel")
	}
}

func TestWhereName(t *testing.T) {
	cases := map[core.DistKind]string{
		core.DistHash:       "distributed",
		core.DistReplicated: "replicated",
		core.DistSingle:     "single-node",
	}
	for k, want := range cases {
		if got := whereName(k); got != want {
			t.Errorf("whereName(%v) = %q, want %q", k, got, want)
		}
	}
}

package planverify

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// --- builders ---

func cols(ids ...algebra.ColumnID) []algebra.ColumnMeta {
	out := make([]algebra.ColumnMeta, len(ids))
	for i, id := range ids {
		out[i] = algebra.ColumnMeta{ID: id, Name: "", Type: types.KindInt}
	}
	return out
}

func relOpt(op algebra.Operator, dist core.Distribution, out []algebra.ColumnMeta, inputs ...*core.Option) *core.Option {
	o := &core.Option{Op: op, Inputs: inputs, Dist: dist, Rows: 10, Width: 8, OutCols: out}
	for _, in := range inputs {
		o.DMSCost += in.DMSCost
	}
	return o
}

func moveOpt(kind cost.MoveKind, col algebra.ColumnID, dist core.Distribution, in *core.Option) *core.Option {
	return &core.Option{
		Move:    &core.MoveSpec{Kind: kind, Col: col},
		Inputs:  []*core.Option{in},
		Dist:    dist,
		Rows:    in.Rows,
		Width:   in.Width,
		OutCols: in.OutCols,
		DMSCost: in.DMSCost + 1,
	}
}

func eq(a, b algebra.ColumnID) algebra.Scalar {
	return &algebra.Binary{
		Op: sqlparser.OpEq,
		L:  &algebra.ColRef{ID: a, Meta: algebra.ColumnMeta{ID: a, Type: types.KindInt}},
		R:  &algebra.ColRef{ID: b, Meta: algebra.ColumnMeta{ID: b, Type: types.KindInt}},
	}
}

func baseHash(id algebra.ColumnID) *core.Option {
	return relOpt(&algebra.Values{Cols: cols(id)}, core.HashOn(id), cols(id))
}

func codesOf(vs []Violation) map[Code]int {
	out := map[Code]int{}
	for _, v := range vs {
		out[v.Code]++
	}
	return out
}

func wantCode(t *testing.T, vs []Violation, code Code) {
	t.Helper()
	if codesOf(vs)[code] == 0 {
		t.Fatalf("expected %s, got %v", code, vs)
	}
}

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("expected clean, got %v", vs)
	}
}

// --- CheckPlan ---

func TestPlanCollocatedJoinClean(t *testing.T) {
	l, r := baseHash(1), baseHash(2)
	j := relOpt(&algebra.Join{Kind: algebra.JoinInner, On: eq(1, 2)},
		core.HashOn(1, 2), cols(1, 2), l, r)
	wantClean(t, CheckPlan(&core.Plan{Root: j}))
}

func TestPlanJoinNotCollocated(t *testing.T) {
	l, r := baseHash(1), baseHash(2)
	j := relOpt(&algebra.Join{Kind: algebra.JoinInner, On: eq(1, 3)},
		core.HashOn(1), cols(1, 2), l, r)
	wantCode(t, CheckPlan(&core.Plan{Root: j}), CodeJoinNotCollocated)
}

func TestPlanJoinPlacement(t *testing.T) {
	// Single against hash crosses the control-node boundary.
	s := relOpt(&algebra.Values{Cols: cols(1)}, core.Single(), cols(1))
	h := baseHash(2)
	j := relOpt(&algebra.Join{Kind: algebra.JoinInner, On: eq(1, 2)}, core.Single(), cols(1, 2), s, h)
	wantCode(t, CheckPlan(&core.Plan{Root: j}), CodeJoinPlacement)

	// Full outer over a replicated right side.
	rep := relOpt(&algebra.Values{Cols: cols(3)}, core.Replicated(), cols(3))
	fo := relOpt(&algebra.Join{Kind: algebra.JoinFullOuter, On: eq(2, 3)},
		core.HashOn(2), cols(2, 3), baseHash(2), rep)
	wantCode(t, CheckPlan(&core.Plan{Root: fo}), CodeJoinPlacement)

	// Left outer with replicated left over partitioned right.
	lo := relOpt(&algebra.Join{Kind: algebra.JoinLeftOuter, On: eq(3, 2)},
		core.HashOn(2), cols(3, 2), rep, baseHash(2))
	wantCode(t, CheckPlan(&core.Plan{Root: lo}), CodeJoinPlacement)

	// Replicated left inner join and single-single are fine.
	ok1 := relOpt(&algebra.Join{Kind: algebra.JoinInner, On: eq(3, 2)},
		core.HashOn(2), cols(3, 2), rep, baseHash(2))
	wantClean(t, CheckPlan(&core.Plan{Root: ok1}))
	s2 := relOpt(&algebra.Values{Cols: cols(4)}, core.Single(), cols(4))
	ok2 := relOpt(&algebra.Join{Kind: algebra.JoinCross}, core.Single(), cols(1, 4), s, s2)
	wantClean(t, CheckPlan(&core.Plan{Root: ok2}))
	// Replicated pairs and hash-replicated inner joins are fine too.
	rep2 := relOpt(&algebra.Values{Cols: cols(5)}, core.Replicated(), cols(5))
	ok3 := relOpt(&algebra.Join{Kind: algebra.JoinLeftOuter, On: eq(2, 3)},
		core.HashOn(2), cols(2, 3), baseHash(2), rep)
	wantClean(t, CheckPlan(&core.Plan{Root: ok3}))
	ok4 := relOpt(&algebra.Join{Kind: algebra.JoinInner, On: eq(3, 5)},
		core.Replicated(), cols(3, 5), rep, rep2)
	wantClean(t, CheckPlan(&core.Plan{Root: ok4}))
}

func TestPlanGroupByPlacement(t *testing.T) {
	in := baseHash(1)
	// Complete aggregation keyed off the partitioning column: fine.
	okGB := relOpt(&algebra.GroupBy{Keys: []algebra.ColumnID{1}}, core.HashOn(1), cols(1), in)
	wantClean(t, CheckPlan(&core.Plan{Root: okGB}))
	// Keyed on a non-partitioning column: groups split across nodes.
	bad := relOpt(&algebra.GroupBy{Keys: []algebra.ColumnID{2}}, core.HashOn(1), cols(1, 2),
		relOpt(&algebra.Values{Cols: cols(1, 2)}, core.HashOn(1), cols(1, 2)))
	wantCode(t, CheckPlan(&core.Plan{Root: bad}), CodeGroupByPlacement)
	// Keyless aggregation over a distributed input.
	scalar := relOpt(&algebra.GroupBy{}, core.HashOn(1), cols(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: scalar}), CodeGroupByPlacement)
	// A partial aggregation is placement-correct anywhere, but its
	// states must flow through a movement into a finalizer (the bare
	// partial at the root is an orphan, checked in TestPlanAggSplit).
	partial := relOpt(&algebra.GroupBy{Keys: []algebra.ColumnID{2}, Phase: algebra.AggPartial},
		core.HashOn(1), cols(1, 2),
		relOpt(&algebra.Values{Cols: cols(1, 2)}, core.HashOn(1), cols(1, 2)))
	vs := CheckPlan(&core.Plan{Root: partial})
	if codesOf(vs)[CodeGroupByPlacement] != 0 {
		t.Fatalf("partial aggregation flagged for placement: %v", vs)
	}
	// Replicated and single inputs always aggregate correctly.
	repIn := relOpt(&algebra.Values{Cols: cols(3)}, core.Replicated(), cols(3))
	repGB := relOpt(&algebra.GroupBy{Keys: []algebra.ColumnID{3}}, core.Replicated(), cols(3), repIn)
	wantClean(t, CheckPlan(&core.Plan{Root: repGB}))
}

// splitPair builds a well-formed partial → shuffle → final chain over a
// hash-distributed input: COUNT state below the move, SUM merge above.
func splitPair() (partial, move, final *core.Option) {
	in := relOpt(&algebra.Values{Cols: cols(1, 2)}, core.HashOn(1), cols(1, 2))
	partial = relOpt(&algebra.GroupBy{
		Keys:  []algebra.ColumnID{1},
		Aggs:  []algebra.AggDef{{Func: algebra.AggCount, ID: 10, Name: "partial10"}},
		Phase: algebra.AggPartial,
	}, core.HashOn(1), cols(1, 10), in)
	move = moveOpt(cost.Shuffle, 1, core.HashOn(1), partial)
	final = relOpt(&algebra.GroupBy{
		Keys: []algebra.ColumnID{1},
		Aggs: []algebra.AggDef{{
			Func: algebra.AggSum,
			Arg:  algebra.NewColRef(algebra.ColumnMeta{ID: 10, Type: types.KindInt}),
			ID:   11, Name: "cnt",
		}},
		Phase: algebra.AggFinal,
	}, core.HashOn(1), cols(1, 11), move)
	return partial, move, final
}

func TestPlanAggSplit(t *testing.T) {
	// The well-formed pair verifies clean.
	_, _, final := splitPair()
	wantClean(t, CheckPlan(&core.Plan{Root: final}))

	// A partial with no finalizer anywhere is an orphan.
	partial, move, _ := splitPair()
	_ = partial
	wantCode(t, CheckPlan(&core.Plan{Root: move}), CodeAggPartialOrphan)

	// A partial consumed by anything but a finalizer leaks raw states.
	_, move2, _ := splitPair()
	j := relOpt(&algebra.Join{Kind: algebra.JoinInner, On: eq(1, 3)},
		core.HashOn(1), cols(1, 10, 3), move2, baseHash(3))
	wantCode(t, CheckPlan(&core.Plan{Root: j}), CodeAggPartialOrphan)

	// A finalizer with more aggregates than its partner.
	_, _, final3 := splitPair()
	gb := final3.Op.(*algebra.GroupBy)
	gb.Aggs = append(gb.Aggs, gb.Aggs[0])
	wantCode(t, CheckPlan(&core.Plan{Root: final3}), CodeAggSplitMismatch)

	// A split DISTINCT aggregate is never decomposable.
	partial4, _, final4 := splitPair()
	partial4.Op.(*algebra.GroupBy).Aggs[0].Distinct = true
	wantCode(t, CheckPlan(&core.Plan{Root: final4}), CodeAggSplitMismatch)
}

func TestPlanUnionPlacement(t *testing.T) {
	l := baseHash(1)
	r := relOpt(&algebra.Values{Cols: cols(1)}, core.Replicated(), cols(1))
	u := relOpt(&algebra.UnionAll{}, core.HashOn(1), cols(1), l, r)
	wantCode(t, CheckPlan(&core.Plan{Root: u}), CodeUnionPlacement)
	ok := relOpt(&algebra.UnionAll{}, core.HashOn(1), cols(1), l, baseHash(1))
	wantClean(t, CheckPlan(&core.Plan{Root: ok}))
}

func TestPlanMoveChecks(t *testing.T) {
	in := baseHash(1)
	// A well-formed shuffle.
	wantClean(t, CheckPlan(&core.Plan{Root: moveOpt(cost.Shuffle, 1, core.HashOn(1), in)}))
	// Shuffle whose output placement misses the routing column.
	m := moveOpt(cost.Shuffle, 2, core.HashOn(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: m}), CodeMoveDistribution)
	// Broadcast claiming a hash output placement.
	b := moveOpt(cost.Broadcast, 0, core.HashOn(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: b}), CodeMoveDistribution)
	// Trim over a hash input (needs a replicated source).
	tr := moveOpt(cost.Trim, 1, core.HashOn(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: tr}), CodeMoveSource)
	// The remaining clean kind pairings.
	rep := relOpt(&algebra.Values{Cols: cols(1)}, core.Replicated(), cols(1))
	single := relOpt(&algebra.Values{Cols: cols(1)}, core.Single(), cols(1))
	for _, okm := range []*core.Option{
		moveOpt(cost.Broadcast, 0, core.Replicated(), in),
		moveOpt(cost.PartitionMove, 0, core.Single(), in),
		moveOpt(cost.Trim, 1, core.HashOn(1), rep),
		moveOpt(cost.RemoteCopySingle, 0, core.Single(), rep),
		moveOpt(cost.ReplicatedBroadcast, 0, core.Replicated(), rep),
		moveOpt(cost.ControlNodeMove, 0, core.Replicated(), single),
	} {
		wantClean(t, CheckPlan(&core.Plan{Root: okm}))
	}
	// An out-of-range kind is malformed.
	u := moveOpt(cost.MoveKind(200), 0, core.HashOn(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: u}), CodeMalformedOption)
}

func TestPlanMalformedOptions(t *testing.T) {
	wantCode(t, CheckPlan(nil), CodeMalformedOption)
	wantCode(t, CheckPlan(&core.Plan{}), CodeMalformedOption)
	empty := &core.Option{Dist: core.Single()}
	wantCode(t, CheckPlan(&core.Plan{Root: empty}), CodeMalformedOption)
	both := &core.Option{Op: &algebra.UnionAll{}, Move: &core.MoveSpec{Kind: cost.Broadcast}, Dist: core.Single()}
	wantCode(t, CheckPlan(&core.Plan{Root: both}), CodeMalformedOption)
	in := baseHash(1)
	badArity := relOpt(&algebra.Join{Kind: algebra.JoinInner}, core.HashOn(1), cols(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: badArity}), CodeMalformedOption)
	badGB := relOpt(&algebra.GroupBy{}, core.HashOn(1), cols(1), in, in)
	wantCode(t, CheckPlan(&core.Plan{Root: badGB}), CodeMalformedOption)
	badUnion := relOpt(&algebra.UnionAll{}, core.HashOn(1), cols(1), in)
	wantCode(t, CheckPlan(&core.Plan{Root: badUnion}), CodeMalformedOption)
	badMove := &core.Option{Move: &core.MoveSpec{Kind: cost.Broadcast}, Dist: core.Replicated(), Inputs: []*core.Option{in, in}}
	wantCode(t, CheckPlan(&core.Plan{Root: badMove}), CodeMalformedOption)
}

func TestPlanEstimates(t *testing.T) {
	neg := baseHash(1)
	neg.Rows = -4
	wantCode(t, CheckPlan(&core.Plan{Root: neg}), CodeEstimateNegative)
	nan := baseHash(1)
	nan.Width = math.NaN()
	wantCode(t, CheckPlan(&core.Plan{Root: nan}), CodeEstimateNegative)
	// A parent undercutting its input's cumulative cost.
	in := baseHash(1)
	in.DMSCost = 9
	cheap := moveOpt(cost.Shuffle, 1, core.HashOn(1), in)
	cheap.DMSCost = 2
	wantCode(t, CheckPlan(&core.Plan{Root: cheap}), CodeEstimateNegative)
	// Plan-level costs.
	wantCode(t, CheckPlan(&core.Plan{Root: baseHash(1), TotalCost: -1}), CodeEstimateNegative)
}

func TestPlanHashColsNotOutput(t *testing.T) {
	o := relOpt(&algebra.Values{Cols: cols(1)}, core.HashOn(7), cols(1))
	wantCode(t, CheckPlan(&core.Plan{Root: o}), CodeHashColsNotOutput)
}

func TestPlanSharedSubplanCheckedOnce(t *testing.T) {
	shared := baseHash(1)
	shared.Rows = -1 // one violation even though referenced twice
	u := relOpt(&algebra.UnionAll{}, core.HashOn(1), cols(1), shared, shared)
	vs := CheckPlan(&core.Plan{Root: u})
	if n := codesOf(vs)[CodeEstimateNegative]; n != 1 {
		t.Fatalf("shared subplan reported %d times: %v", n, vs)
	}
}

// --- CheckDSQL ---

func testShell(t *testing.T) *catalog.Shell {
	t.Helper()
	sh := catalog.NewShell(4)
	err := sh.AddTable(&catalog.Table{
		Name:    "nation",
		Columns: []catalog.Column{{Name: "n_nationkey", Type: types.KindInt}},
		Dist:    catalog.Distribution{Kind: catalog.DistReplicated},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func moveStep(id int, dest, sql string) dsql.Step {
	return dsql.Step{
		ID: id, Kind: dsql.StepMove, SQL: sql, Where: core.DistHash,
		Idempotent: true, MoveKind: cost.Shuffle, HashCol: "c1", Dest: dest,
		DestCols: []catalog.Column{{Name: "c1", Type: types.KindInt}},
	}
}

func returnStep(id int, sql string) dsql.Step {
	return dsql.Step{ID: id, Kind: dsql.StepReturn, SQL: sql, Where: core.DistHash}
}

func TestDSQLCleanSequence(t *testing.T) {
	p := &dsql.Plan{Steps: []dsql.Step{
		moveStep(0, "TEMP_ID_1", "SELECT l_orderkey AS c1 FROM [dbo].[nation] AS T1"),
		moveStep(1, "TEMP_ID_2", "SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
		returnStep(2, "SELECT c1 FROM [tempdb].[TEMP_ID_2]"),
	}}
	wantClean(t, CheckDSQL(p, nil, testShell(t)))
}

func TestDSQLReturnShape(t *testing.T) {
	wantCode(t, CheckDSQL(nil, nil, nil), CodeReturnMissing)
	wantCode(t, CheckDSQL(&dsql.Plan{}, nil, nil), CodeReturnMissing)
	noReturn := &dsql.Plan{Steps: []dsql.Step{moveStep(0, "TEMP_ID_1", "SELECT 1 AS c1")}}
	vs := CheckDSQL(noReturn, nil, nil)
	wantCode(t, vs, CodeReturnMissing)
	wantCode(t, vs, CodeTempOrphan)
	early := &dsql.Plan{Steps: []dsql.Step{
		returnStep(0, "SELECT 1 AS c1"),
		moveStep(1, "TEMP_ID_1", "SELECT 1 AS c1"),
	}}
	wantCode(t, CheckDSQL(early, nil, nil), CodeReturnNotLast)
	double := &dsql.Plan{Steps: []dsql.Step{
		returnStep(0, "SELECT 1 AS c1"),
		returnStep(1, "SELECT 1 AS c1"),
	}}
	wantCode(t, CheckDSQL(double, nil, nil), CodeReturnNotLast)
}

func TestDSQLStepIDOrder(t *testing.T) {
	p := &dsql.Plan{Steps: []dsql.Step{
		moveStep(1, "TEMP_ID_1", "SELECT 1 AS c1"),
		returnStep(0, "SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
	}}
	wantCode(t, CheckDSQL(p, nil, nil), CodeStepIDOrder)
}

func TestDSQLTempFlow(t *testing.T) {
	// Use before def: the reader precedes the producer.
	p := &dsql.Plan{Steps: []dsql.Step{
		moveStep(0, "TEMP_ID_2", "SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
		moveStep(1, "TEMP_ID_1", "SELECT 1 AS c1"),
		returnStep(2, "SELECT c1 FROM [tempdb].[TEMP_ID_2], [tempdb].[TEMP_ID_1]"),
	}}
	wantCode(t, CheckDSQL(p, nil, nil), CodeTempUseBeforeDef)

	// Dangling reference.
	dangling := &dsql.Plan{Steps: []dsql.Step{
		moveStep(0, "TEMP_ID_1", "SELECT 1 AS c1"),
		returnStep(1, "SELECT c1 FROM [tempdb].[TEMP_ID_1], [tempdb].[TEMP_ID_9]"),
	}}
	wantCode(t, CheckDSQL(dangling, nil, nil), CodeTempUnknown)

	// Redefinition.
	redef := &dsql.Plan{Steps: []dsql.Step{
		moveStep(0, "TEMP_ID_1", "SELECT 1 AS c1"),
		moveStep(1, "TEMP_ID_1", "SELECT 1 AS c1"),
		returnStep(2, "SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
	}}
	wantCode(t, CheckDSQL(redef, nil, nil), CodeTempRedefined)

	// Orphan.
	orphan := &dsql.Plan{Steps: []dsql.Step{
		moveStep(0, "TEMP_ID_1", "SELECT 1 AS c1"),
		returnStep(1, "SELECT 1 AS c1"),
	}}
	wantCode(t, CheckDSQL(orphan, nil, nil), CodeTempOrphan)

	// A step reading its own destination is use-before-def.
	selfRead := &dsql.Plan{Steps: []dsql.Step{
		moveStep(0, "TEMP_ID_1", "SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
		returnStep(1, "SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
	}}
	wantCode(t, CheckDSQL(selfRead, nil, nil), CodeTempUseBeforeDef)
}

func TestDSQLMoveStepShape(t *testing.T) {
	base := func() dsql.Step { return moveStep(0, "TEMP_ID_1", "SELECT 1 AS c1") }
	ret := func() dsql.Step { return returnStep(1, "SELECT c1 FROM [tempdb].[TEMP_ID_1]") }

	noDest := base()
	noDest.Dest = ""
	vs := CheckDSQL(&dsql.Plan{Steps: []dsql.Step{noDest, ret()}}, nil, nil)
	wantCode(t, vs, CodeMoveStepShape)

	notIdem := base()
	notIdem.Idempotent = false
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{notIdem, ret()}}, nil, nil), CodeMoveStepShape)

	badSrc := base()
	badSrc.Where = core.DistReplicated // a Shuffle consumes hash placements
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{badSrc, ret()}}, nil, nil), CodeMoveStepShape)

	noHash := base()
	noHash.HashCol = ""
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{noHash, ret()}}, nil, nil), CodeMoveStepShape)

	wrongHash := base()
	wrongHash.HashCol = "c9"
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{wrongHash, ret()}}, nil, nil), CodeMoveStepShape)

	badKind := base()
	badKind.MoveKind = cost.MoveKind(200)
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{badKind, ret()}}, nil, nil), CodeMoveStepShape)

	stray := base()
	stray.MoveKind = cost.Broadcast // keeps HashCol "c1" → stray routing column
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{stray, ret()}}, nil, nil), CodeMoveStepShape)

	destOnReturn := ret()
	destOnReturn.ID = 1
	destOnReturn.Dest = "TEMP_ID_9"
	wantCode(t, CheckDSQL(&dsql.Plan{Steps: []dsql.Step{base(), destOnReturn}}, nil, nil), CodeMoveStepShape)
}

func TestDSQLUnknownBaseTable(t *testing.T) {
	p := &dsql.Plan{Steps: []dsql.Step{
		returnStep(0, "SELECT n_nationkey FROM [dbo].[nosuch] AS T1"),
	}}
	wantCode(t, CheckDSQL(p, nil, testShell(t)), CodeUnknownBaseTable)
}

func TestDSQLMoveSetMismatch(t *testing.T) {
	in := baseHash(1)
	tree := &core.Plan{Root: moveOpt(cost.Shuffle, 1, core.HashOn(1), in)}
	// Step list claims a Broadcast the tree does not have, and misses the
	// tree's Shuffle.
	b := moveStep(0, "TEMP_ID_1", "SELECT 1 AS c1")
	b.MoveKind = cost.Broadcast
	b.HashCol = ""
	p := &dsql.Plan{Steps: []dsql.Step{b, returnStep(1, "SELECT c1 FROM [tempdb].[TEMP_ID_1]")}}
	vs := CheckDSQL(p, tree, nil)
	if codesOf(vs)[CodeMoveSetMismatch] < 2 {
		t.Fatalf("expected both directions of the mismatch, got %v", vs)
	}
}

// --- CheckMemo / CheckInteresting ---

func valuesExpr(children ...int) memoxml.DecodedExpr {
	return memoxml.DecodedExpr{Op: &algebra.Values{Cols: cols(1)}, Children: children}
}

func TestMemoChecks(t *testing.T) {
	wantCode(t, CheckMemo(nil), CodeMemoRootMissing)

	missingRoot := &memoxml.Decoded{Root: 9, Groups: map[int]*memoxml.DecodedGroup{}}
	wantCode(t, CheckMemo(missingRoot), CodeMemoRootMissing)

	dangling := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Exprs: []memoxml.DecodedExpr{valuesExpr(2)}},
	}}
	wantCode(t, CheckMemo(dangling), CodeMemoDanglingChild)

	cyclic := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Exprs: []memoxml.DecodedExpr{valuesExpr(2)}},
		2: {ID: 2, Exprs: []memoxml.DecodedExpr{valuesExpr(1)}},
	}}
	wantCode(t, CheckMemo(cyclic), CodeMemoCycle)

	empty := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1},
	}}
	wantCode(t, CheckMemo(empty), CodeMemoEmptyGroup)

	negCost := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Exprs: []memoxml.DecodedExpr{{Op: &algebra.Values{Cols: cols(1)}, Cost: -3}}},
	}}
	wantCode(t, CheckMemo(negCost), CodeMemoEstimate)

	badStats := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Exprs: []memoxml.DecodedExpr{valuesExpr()},
			ColStats: map[algebra.ColumnID]memoxml.DecodedColStat{1: {NDV: 5, NullFrac: 1.5}}},
	}}
	wantCode(t, CheckMemo(badStats), CodeMemoEstimate)

	clean := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Rows: 5, Width: 8, Exprs: []memoxml.DecodedExpr{valuesExpr(2)}},
		2: {ID: 2, Rows: 5, Width: 8, Exprs: []memoxml.DecodedExpr{valuesExpr()},
			ColStats: map[algebra.ColumnID]memoxml.DecodedColStat{1: {NDV: 5, NullFrac: 0.1, Width: 8}}},
	}}
	wantClean(t, CheckMemo(clean))
}

func TestMemoWinnerChecks(t *testing.T) {
	win := valuesExpr(2)
	win.Winner = true
	dangling := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Exprs: []memoxml.DecodedExpr{win}},
		2: {ID: 2}, // no expressions to extract from
	}}
	vs := CheckMemo(dangling)
	wantCode(t, vs, CodeWinnerDangling)

	w1, w2 := valuesExpr(), valuesExpr()
	w1.Winner, w2.Winner = true, true
	double := &memoxml.Decoded{Root: 1, Groups: map[int]*memoxml.DecodedGroup{
		1: {ID: 1, Exprs: []memoxml.DecodedExpr{w1, w2}},
	}}
	wantCode(t, CheckMemo(double), CodeWinnerDuplicate)
}

// interestingMemo is a two-table equijoin memo: group 3 joins groups 1
// and 2 on c1 = c2, and group 4 aggregates group 3 by c1.
func interestingMemo() *memoxml.Decoded {
	g1 := &memoxml.DecodedGroup{ID: 1, OutCols: cols(1), Exprs: []memoxml.DecodedExpr{valuesExpr()}}
	g2 := &memoxml.DecodedGroup{ID: 2, OutCols: cols(2), Exprs: []memoxml.DecodedExpr{valuesExpr()}}
	join := memoxml.DecodedExpr{
		Op:       &algebra.Join{Kind: algebra.JoinInner, On: eq(1, 2)},
		Children: []int{1, 2},
	}
	g3 := &memoxml.DecodedGroup{ID: 3, OutCols: cols(1, 2), Exprs: []memoxml.DecodedExpr{join}}
	gb := memoxml.DecodedExpr{
		Op:       &algebra.GroupBy{Keys: []algebra.ColumnID{1}},
		Children: []int{3},
	}
	g4 := &memoxml.DecodedGroup{ID: 4, OutCols: cols(1), Exprs: []memoxml.DecodedExpr{gb}}
	return &memoxml.Decoded{Root: 4, Groups: map[int]*memoxml.DecodedGroup{1: g1, 2: g2, 3: g3, 4: g4}}
}

func TestInterestingClosure(t *testing.T) {
	dec := interestingMemo()
	full := map[int][]algebra.ColumnID{
		1: {1}, 2: {2}, 3: {1, 2}, 4: {1},
	}
	lookup := func(m map[int][]algebra.ColumnID) func(int) []algebra.ColumnID {
		return func(g int) []algebra.ColumnID { return m[g] }
	}
	wantClean(t, CheckInteresting(dec, lookup(full)))

	// Dropping the equijoin column from a child breaks transitivity.
	noJoinCol := map[int][]algebra.ColumnID{1: {1}, 2: nil, 3: {1, 2}, 4: {1}}
	wantCode(t, CheckInteresting(dec, lookup(noJoinCol)), CodeInterestingNotClosed)

	// Dropping the group-by key from the aggregation's child.
	noKey := map[int][]algebra.ColumnID{1: {1}, 2: {2}, 3: {2}, 4: {1}}
	wantCode(t, CheckInteresting(dec, lookup(noKey)), CodeInterestingNotClosed)

	// Parent demand: group 4 finds c1 interesting, so group 3 must too.
	vs := CheckInteresting(dec, lookup(noKey))
	found := false
	for _, v := range vs {
		if v.Group == 3 && strings.Contains(v.Detail, "c1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a group-3 closure violation, got %v", vs)
	}

	// Physical expressions are outside the PDW planning surface.
	phys := memoxml.DecodedExpr{
		Op:       &algebra.Join{Kind: algebra.JoinInner, On: eq(1, 2)},
		Children: []int{1, 2},
		Physical: true,
	}
	dec.Groups[3].Exprs = append(dec.Groups[3].Exprs, phys)
	wantClean(t, CheckInteresting(dec, lookup(full)))
}

// --- Check / Report / Error ---

func TestReportAndError(t *testing.T) {
	r := &Report{}
	if !r.OK() || r.Err() != nil {
		t.Fatal("empty report must be clean")
	}
	bad := baseHash(1)
	bad.Rows = -1
	rep := Check(Artifacts{Plan: &core.Plan{Root: bad}})
	if rep.OK() {
		t.Fatal("expected violations")
	}
	if !rep.Has(CodeEstimateNegative) || rep.Has(CodeMemoCycle) {
		t.Fatalf("Has misreports: %v", rep.Violations)
	}
	err := rep.Err()
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("Err must be a typed *Error, got %T", err)
	}
	if !strings.Contains(err.Error(), string(CodeEstimateNegative)) {
		t.Fatalf("error text misses the code: %s", err)
	}
	// Violation coordinates render.
	v := stepViolation(CodeTempOrphan, 3, "x")
	if !strings.Contains(v.String(), "step=3") {
		t.Fatalf("bad step rendering: %s", v)
	}
	gv := groupViolation(CodeMemoCycle, 7, "y")
	if !strings.Contains(gv.String(), "group=7") {
		t.Fatalf("bad group rendering: %s", gv)
	}
}

func TestCheckAllLayers(t *testing.T) {
	// One artifact per layer, each broken, all surfaced in one report.
	badPlan := baseHash(1)
	badPlan.Rows = -1
	p := &dsql.Plan{Steps: []dsql.Step{returnStep(0, "SELECT 1 AS c1")}}
	dec := &memoxml.Decoded{Root: 9, Groups: map[int]*memoxml.DecodedGroup{}}
	rep := Check(Artifacts{
		Plan:        &core.Plan{Root: badPlan},
		DSQL:        p,
		Memo:        dec,
		Interesting: func(int) []algebra.ColumnID { return nil },
	})
	for _, code := range []Code{CodeEstimateNegative, CodeMemoRootMissing} {
		if !rep.Has(code) {
			t.Fatalf("missing %s in %v", code, rep.Violations)
		}
	}
}

package main

import (
	"context"
	"fmt"
	"time"

	"pdwqo"
	"pdwqo/internal/loadgen"
	"pdwqo/internal/server"
)

// e21 measures the concurrent query server at scale: an in-process
// server over the benchmark appliance is driven by loadgen at a sweep of
// session counts (up to -sessions), reporting p50/p99 latency,
// throughput, and plan-cache hit rate per row — the control node's
// prepared-statement economics under real concurrency. A second arm
// oversubscribes a deliberately tiny admission gate and reports the
// typed load-shedding counts: the server must reject with queue-full /
// queue-timeout errors, never stall or panic.
func e21(db *pdwqo.DB) {
	header("E21", "concurrent query server — latency, throughput, and admission control under load")
	db.SetPlanCache(4096)
	defer db.SetPlanCache(-1)
	// Per-node parallelism keeps yield points inside query execution even
	// on a one-CPU host, so admitted workers genuinely overlap in the
	// admission gate instead of each running to completion unpreempted.
	db.SetParallelism(2)
	defer db.SetParallelism(*parallel)

	srv := server.New(db, server.Config{MaxConcurrent: 8, MaxQueue: 1 << 16})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer srv.Shutdown()

	// Warm the plan cache so the sweep measures the steady state the
	// paper's forced parameterization is designed for.
	warm, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr: addr.String(), Sessions: 2, QueriesPerSession: 2 * len(loadgen.DefaultMix), Seed: 7,
	})
	if err != nil {
		fatal(err)
	}
	if warm.Errors > 0 {
		fatal(fmt.Errorf("e21 warmup saw %d errors: %v", warm.Errors, warm.ByCode))
	}

	counts := sessionSweep(*sessions)
	fmt.Printf("%9s %9s %11s %11s %11s %12s %9s\n",
		"sessions", "queries", "p50", "p99", "max", "throughput", "hit-rate")
	var last *loadgen.Report
	for _, n := range counts {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			Addr:              addr.String(),
			Sessions:          n,
			QueriesPerSession: perSessionQueries(n),
			PreparedFraction:  0.5,
			Seed:              42,
		})
		if err != nil {
			fatal(err)
		}
		if rep.DialFails > 0 {
			fatal(fmt.Errorf("e21: %d sessions failed to connect at n=%d", rep.DialFails, n))
		}
		fmt.Printf("%9d %9d %11v %11v %11v %10.1f/s %8.1f%%\n",
			n, rep.Queries,
			rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond),
			rep.Max.Round(time.Microsecond), rep.Throughput(), 100*rep.HitRate())
		if rep.Errors > 0 {
			fmt.Printf("          errors: %v\n", rep.ByCode)
		}
		last = rep
	}

	// Oversubscription arm: 1 slot, a 1-deep queue, a 1ms wait budget,
	// hammered far beyond capacity. Load must shed as typed rejections.
	shed := server.New(db, server.Config{
		MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Millisecond,
	})
	shedAddr, err := shed.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer shed.Shutdown()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr: shedAddr.String(), Sessions: 64, QueriesPerSession: 16, PreparedFraction: 0.5, Seed: 9,
	})
	if err != nil {
		fatal(err)
	}
	st := shed.Stats()
	fmt.Printf("\noversubscribed (1 slot, queue 1, 1ms budget, 64 sessions): "+
		"admitted=%d queue-full=%d queue-timeout=%d\n",
		st.Admission.Admitted, st.Admission.RejectedFull, st.Admission.RejectedTimeout)
	if st.Admission.RejectedFull+st.Admission.RejectedTimeout == 0 {
		fatal(fmt.Errorf("e21: oversubscribed arm shed no load (admission %+v)", st.Admission))
	}
	for code := range rep.ByCode {
		switch code {
		case server.CodeQueueFull, server.CodeQueueTimeout:
		default:
			fatal(fmt.Errorf("e21: oversubscribed arm saw unexpected error code %s: %v", code, rep.ByCode))
		}
	}

	fmt.Printf("\nE21 RESULT: sessions=%d p50=%v p99=%v throughput=%.1fq/s hit-rate=%.1f%% shed-full=%d shed-timeout=%d\n\n",
		last.Sessions, last.P50.Round(time.Microsecond), last.P99.Round(time.Microsecond),
		last.Throughput(), 100*last.HitRate(),
		st.Admission.RejectedFull, st.Admission.RejectedTimeout)
}

// sessionSweep builds the session-count ladder up to max.
func sessionSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for _, n := range []int{1, 8, 64, 256, 1000} {
		if n < max {
			out = append(out, n)
		}
	}
	return append(out, max)
}

// perSessionQueries keeps total work roughly constant across the sweep
// so big session counts measure concurrency, not a larger workload.
func perSessionQueries(sessions int) int {
	const totalTarget = 4000
	q := totalTarget / sessions
	if q < 2 {
		return 2
	}
	if q > 50 {
		return 50
	}
	return q
}

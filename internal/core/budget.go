package core

import "fmt"

// BudgetError reports that PDW-side enumeration stopped because the
// search budget (Config.SearchBudget) was exhausted. The budget is
// checked only at wave barriers — between topological waves of the
// bottom-up enumeration — so the trip point is deterministic and the
// recorded counter is exact at any Parallelism setting: every option
// created by completed waves is counted, and no wave is half-counted.
//
// Callers (pdwqo.DB.Optimize) treat a BudgetError as the signal to
// switch regimes: re-plan the query with the greedy join-order heuristic
// over a fixed memo instead of exhaustive enumeration.
type BudgetError struct {
	// Budget is the configured cap on options considered.
	Budget int
	// Considered is the exact number of options created by the waves
	// that completed before the barrier tripped.
	Considered int64
	// Wave is the barrier index that tripped; Waves is the total number
	// of topological waves the enumeration would have run.
	Wave, Waves int
	// Groups is the total number of memo groups under enumeration.
	Groups int
}

// Error renders the exhaustion diagnostics.
func (e *BudgetError) Error() string {
	return fmt.Sprintf(
		"core: search budget exhausted: %d options considered >= budget %d at wave %d/%d (%d groups)",
		e.Considered, e.Budget, e.Wave, e.Waves, e.Groups)
}

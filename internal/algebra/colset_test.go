package algebra

import (
	"testing"
	"testing/quick"
)

func setFrom(ids []uint8) ColSet {
	s := NewColSet()
	for _, id := range ids {
		s.Add(ColumnID(id % 64))
	}
	return s
}

func TestColSetSubsetReflexive(t *testing.T) {
	f := func(ids []uint8) bool {
		s := setFrom(ids)
		return s.SubsetOf(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColSetUnionIsUpperBound(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := setFrom(a), setFrom(b)
		u := NewColSet()
		u.AddSet(sa)
		u.AddSet(sb)
		return sa.SubsetOf(u) && sb.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColSetIntersectsSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := setFrom(a), setFrom(b)
		return sa.Intersects(sb) == sb.Intersects(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColSetSortedIsSortedAndComplete(t *testing.T) {
	f := func(a []uint8) bool {
		s := setFrom(a)
		ids := s.Sorted()
		if len(ids) != len(s) {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				return false
			}
		}
		for _, id := range ids {
			if !s.Has(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColSetStringDeterministic(t *testing.T) {
	f := func(a []uint8) bool {
		s1, s2 := setFrom(a), setFrom(a)
		return s1.String() == s2.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package exec

// Allocation-free row hashing for the vectorized engine's join-build and
// group-by maps. types.Hash routes every value through an fnv.New64a
// heap allocation and hash.Hash64 interface calls — fine for occasional
// use, fatal in a per-row hot loop. This fold inlines the same FNV-1a
// scheme with the same normalization guarantee: numerics hash by their
// float64 bit pattern regardless of INT/FLOAT kind, so Equal(a, b)
// implies hashVal(h, a) == hashVal(h, b). Bucket membership therefore
// coincides with the equality both engines confirm via Compare, and the
// bucket function itself can differ from types.HashRowKey without any
// observable difference in results.

import (
	"math"

	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvU64(h uint64, x uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = fnvByte(h, byte(x>>uint(s)))
	}
	return h
}

// hashVal folds one value into a running FNV-1a state. Kind tags keep
// NULL, FALSE and 0 distinct; INT and FLOAT share a tag and hash their
// float64 coercion so cross-kind numeric equality hashes identically.
func hashVal(h uint64, v types.Value) uint64 {
	switch v.Kind() {
	case types.KindNull:
		return fnvByte(h, 0)
	case types.KindBool:
		h = fnvByte(h, 1)
		if v.Bool() {
			return fnvByte(h, 1)
		}
		return fnvByte(h, 0)
	case types.KindInt:
		return fnvU64(fnvByte(h, 2), math.Float64bits(float64(v.Int())))
	case types.KindFloat:
		return fnvU64(fnvByte(h, 2), math.Float64bits(v.Float()))
	case types.KindDate:
		return fnvU64(fnvByte(h, 4), uint64(v.DateDays()))
	default: // KindString
		h = fnvByte(h, 5)
		s := v.Str()
		for i := 0; i < len(s); i++ {
			h = fnvByte(h, s[i])
		}
		return h
	}
}

// hashRow folds a composite key without allocating.
func hashRow(vals []types.Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h = hashVal(h, v)
	}
	return h
}

// foldVecHash folds one key column into a batch's running row hashes,
// column-wise. Typed NULL-free vectors skip boxing entirely; everything
// else routes through hashVal on the boxed value, so the fold order and
// encoding match hashRow exactly.
func foldVecHash(v *vec.Vec, n int, hs []uint64) {
	if !v.Mixed && v.Nulls == nil {
		switch v.Kind {
		case types.KindInt:
			for i := 0; i < n; i++ {
				hs[i] = fnvU64(fnvByte(hs[i], 2), math.Float64bits(float64(v.I64[i])))
			}
			return
		case types.KindFloat:
			for i := 0; i < n; i++ {
				hs[i] = fnvU64(fnvByte(hs[i], 2), math.Float64bits(v.F64[i]))
			}
			return
		case types.KindDate:
			for i := 0; i < n; i++ {
				hs[i] = fnvU64(fnvByte(hs[i], 4), uint64(v.I64[i]))
			}
			return
		case types.KindString:
			for i := 0; i < n; i++ {
				h := fnvByte(hs[i], 5)
				s := v.Str[i]
				for k := 0; k < len(s); k++ {
					h = fnvByte(h, s[k])
				}
				hs[i] = h
			}
			return
		}
	}
	for i := 0; i < n; i++ {
		hs[i] = hashVal(hs[i], v.At(i))
	}
}

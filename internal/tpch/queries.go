package tpch

import "sort"

// Query is one adapted TPC-H query.
type Query struct {
	Name string
	SQL  string
	// Notes records adaptations relative to the official text.
	Notes string
}

// Queries returns the adapted TPC-H suite in name order. Adaptations are
// limited to the engine's SQL subset: date arithmetic is pre-computed or
// uses DATEADD, INTERVAL syntax is avoided, and columns outside the
// generated schema are dropped (noted per query).
func Queries() []Query {
	out := make([]Query, 0, len(querySet))
	for _, q := range querySet {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns one query by name ("q1", "q20", ...), or false.
func Get(name string) (Query, bool) {
	q, ok := querySet[name]
	return q, ok
}

var querySet = map[string]Query{
	"q02": {
		Name:  "q02",
		Notes: "region filter on nation only (generated schema has no supplier comment fields); correlated MIN subquery kept",
		SQL: `
SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, ps_supplycost
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey
  AND s_suppkey = ps_suppkey
  AND p_size = 15
  AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (
      SELECT MIN(ps_supplycost)
      FROM partsupp, supplier, nation, region
      WHERE p_partkey = ps_partkey
        AND s_suppkey = ps_suppkey
        AND s_nationkey = n_nationkey
        AND n_regionkey = r_regionkey
        AND r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`,
	},
	"q07": {
		Name:  "q07",
		Notes: "YEAR() instead of extract(year from ...)",
		SQL: `
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (
    SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
           YEAR(l_shipdate) AS l_year,
           l_extendedprice * (1 - l_discount) AS volume
    FROM supplier, lineitem, orders, customer, nation n1, nation n2
    WHERE s_suppkey = l_suppkey
      AND o_orderkey = l_orderkey
      AND c_custkey = o_custkey
      AND s_nationkey = n1.n_nationkey
      AND c_nationkey = n2.n_nationkey
      AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
        OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
      AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year`,
	},
	"q08": {
		Name:  "q08",
		Notes: "market-share CASE over nation volume; YEAR() for extract",
		SQL: `
SELECT o_year,
       SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / SUM(volume) AS mkt_share
FROM (
    SELECT YEAR(o_orderdate) AS o_year,
           l_extendedprice * (1 - l_discount) AS volume,
           n2.n_name AS nation
    FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
    WHERE p_partkey = l_partkey
      AND s_suppkey = l_suppkey
      AND l_orderkey = o_orderkey
      AND o_custkey = c_custkey
      AND c_nationkey = n1.n_nationkey
      AND n1.n_regionkey = r_regionkey
      AND r_name = 'AMERICA'
      AND s_nationkey = n2.n_nationkey
      AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
      AND p_type = 'ECONOMY PLATED NICKEL'
) all_nations
GROUP BY o_year
ORDER BY o_year`,
	},
	"q09": {
		Name:  "q09",
		Notes: "profit simplified to revenue minus supplycost·qty via partsupp",
		SQL: `
SELECT nation, o_year, SUM(amount) AS sum_profit
FROM (
    SELECT n_name AS nation, YEAR(o_orderdate) AS o_year,
           l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount
    FROM part, supplier, lineitem, partsupp, orders, nation
    WHERE s_suppkey = l_suppkey
      AND ps_suppkey = l_suppkey
      AND ps_partkey = l_partkey
      AND p_partkey = l_partkey
      AND o_orderkey = l_orderkey
      AND s_nationkey = n_nationkey
      AND p_name LIKE '%green%'
) profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC`,
	},
	"q11": {
		Name:  "q11",
		Notes: "scalar fraction threshold in HAVING via uncorrelated subquery",
		SQL: `
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) > (
    SELECT SUM(ps_supplycost * ps_availqty) * 0.0005
    FROM partsupp, supplier, nation
    WHERE ps_suppkey = s_suppkey
      AND s_nationkey = n_nationkey
      AND n_name = 'GERMANY')
ORDER BY value DESC`,
	},
	"q13": {
		Name:  "q13",
		Notes: "comment-pattern filter dropped (no o_comment column)",
		SQL: `
SELECT c_count, COUNT(*) AS custdist
FROM (
    SELECT c_custkey AS ck, COUNT(o_orderkey) AS c_count
    FROM customer LEFT JOIN orders ON c_custkey = o_custkey
         AND o_orderpriority <> '1-URGENT'
    GROUP BY c_custkey
) c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`,
	},
	"q15": {
		Name:  "q15",
		Notes: "the revenue view inlined as two derived tables (one per reference)",
		SQL: `
SELECT s_suppkey, s_name, s_address, total_revenue
FROM supplier, (
    SELECT l_suppkey AS supplier_no,
           SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
    FROM lineitem
    WHERE l_shipdate >= '1996-01-01'
      AND l_shipdate < DATEADD(month, 3, '1996-01-01')
    GROUP BY l_suppkey
) revenue
WHERE s_suppkey = supplier_no
  AND total_revenue = (
      SELECT MAX(total_revenue) FROM (
          SELECT l_suppkey AS supplier_no,
                 SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
          FROM lineitem
          WHERE l_shipdate >= '1996-01-01'
            AND l_shipdate < DATEADD(month, 3, '1996-01-01')
          GROUP BY l_suppkey
      ) revenue_inner)
ORDER BY s_suppkey`,
	},
	"q16": {
		Name:  "q16",
		Notes: "supplier complaint NOT IN subquery adapted to s_acctbal filter",
		SQL: `
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (
      SELECT s_suppkey FROM supplier WHERE s_acctbal < 0)
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size`,
	},
	"q19": {
		Name:  "q19",
		Notes: "shipmode/instruction predicates reduced to generated columns",
		SQL: `
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND ((p_brand = 'Brand#12' AND p_container = 'SM CASE'
        AND l_quantity >= 1 AND l_quantity <= 11 AND p_size BETWEEN 1 AND 5)
    OR (p_brand = 'Brand#23' AND p_container = 'MED BAG'
        AND l_quantity >= 10 AND l_quantity <= 20 AND p_size BETWEEN 1 AND 10)
    OR (p_brand = 'Brand#34' AND p_container = 'LG BOX'
        AND l_quantity >= 20 AND l_quantity <= 30 AND p_size BETWEEN 1 AND 15))
  AND l_shipmode IN ('AIR', 'REG AIR')`,
	},
	"q21": {
		Name:  "q21",
		Notes: "multi-lineitem EXISTS/NOT EXISTS pair kept; order status filter kept",
		SQL: `
SELECT TOP 100 s_name, COUNT(*) AS numwait
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
      SELECT 1 FROM lineitem l2
      WHERE l2.l_orderkey = l1.l_orderkey
        AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (
      SELECT 1 FROM lineitem l3
      WHERE l3.l_orderkey = l1.l_orderkey
        AND l3.l_suppkey <> l1.l_suppkey
        AND l3.l_receiptdate > l3.l_commitdate)
  AND s_nationkey = n_nationkey
  AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name`,
	},
	"q22": {
		Name:  "q22",
		Notes: "country-code prefix via SUBSTRING over c_name digits; acctbal threshold subquery kept",
		SQL: `
SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM (
    SELECT SUBSTRING(c_name, 10, 2) AS cntrycode, c_acctbal
    FROM customer
    WHERE SUBSTRING(c_name, 10, 2) IN ('13', '31', '23', '29', '30', '18', '17')
      AND c_acctbal > (
          SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.00)
      AND NOT EXISTS (
          SELECT 1 FROM orders WHERE o_custkey = c_custkey)
) custsale
GROUP BY cntrycode
ORDER BY cntrycode`,
	},
	"q01": {
		Name:  "q01",
		Notes: "interval arithmetic folded into the date literal",
		SQL: `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`,
	},
	"q03": {
		Name:  "q03",
		Notes: "o_shippriority column omitted from the generated schema",
		SQL: `
SELECT TOP 10 l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < '1995-03-15'
  AND l_shipdate > '1995-03-15'
GROUP BY l_orderkey, o_orderdate
ORDER BY revenue DESC, o_orderdate`,
	},
	"q04": {
		Name: "q04",
		SQL: `
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= '1993-07-01'
  AND o_orderdate < DATEADD(month, 3, '1993-07-01')
  AND EXISTS (
      SELECT 1 FROM lineitem
      WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority`,
	},
	"q05": {
		Name: "q05",
		SQL: `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= '1994-01-01'
  AND o_orderdate < DATEADD(year, 1, '1994-01-01')
GROUP BY n_name
ORDER BY revenue DESC`,
	},
	"q06": {
		Name: "q06",
		SQL: `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '1994-01-01'
  AND l_shipdate < DATEADD(year, 1, '1994-01-01')
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`,
	},
	"q10": {
		Name:  "q10",
		Notes: "c_address/c_phone/c_comment omitted from the generated schema",
		SQL: `
SELECT TOP 20 c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= '1993-10-01'
  AND o_orderdate < DATEADD(month, 3, '1993-10-01')
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, n_name
ORDER BY revenue DESC`,
	},
	"q12": {
		Name: "q12",
		SQL: `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= '1994-01-01'
  AND l_receiptdate < DATEADD(year, 1, '1994-01-01')
GROUP BY l_shipmode
ORDER BY l_shipmode`,
	},
	"q14": {
		Name: "q14",
		SQL: `
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= '1995-09-01'
  AND l_shipdate < DATEADD(month, 1, '1995-09-01')`,
	},
	"q17": {
		Name: "q17",
		SQL: `
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = 'Brand#23'
  AND p_container = 'MED BAG'
  AND l_quantity < (
      SELECT 0.2 * AVG(l_quantity)
      FROM lineitem
      WHERE l_partkey = p_partkey)`,
	},
	"q18": {
		Name: "q18",
		SQL: `
SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE o_orderkey IN (
      SELECT l_orderkey FROM lineitem
      GROUP BY l_orderkey HAVING SUM(l_quantity) > 212)
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate`,
	},
	"q20": {
		Name:  "q20",
		Notes: "verbatim from the paper's §4 (Figure 7)",
		SQL: `
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (
    SELECT ps_suppkey
    FROM partsupp
    WHERE ps_partkey IN (
        SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
      AND ps_availqty > (
        SELECT 0.5 * SUM(l_quantity)
        FROM lineitem
        WHERE l_partkey = ps_partkey
          AND l_suppkey = ps_suppkey
          AND l_shipdate >= '1994-01-01'
          AND l_shipdate < DATEADD(year, 1, '1994-01-01'))
)
  AND s_nationkey = n_nationkey
  AND n_name = 'CANADA'
ORDER BY s_name`,
	},
}

package algebra

import (
	"fmt"
	"strings"

	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// Binder resolves parser ASTs against the shell database, producing bound
// operator trees with globally unique column IDs. It plays the role of the
// SQL Server algebrizer in the paper's compilation pipeline (Figure 2).
type Binder struct {
	shell   *catalog.Shell
	nextID  ColumnID
	paramAt map[int]int // literal byte offset → 1-based parameter slot
}

// NewBinder returns a binder over the given shell database.
func NewBinder(shell *catalog.Shell) *Binder {
	return &Binder{shell: shell, nextID: 1}
}

// SetParamSlots installs the parameter-slot map for the plan cache's
// template compilation: slots maps a literal token's byte offset in the
// source text to its 0-based parameter slot (see normalize.Parameterize).
// Constants bound from those literals carry the slot as Const.Param so
// DSQL generation can render them as re-bindable placeholders. A nil map
// (the default) binds every literal as a plain constant.
func (b *Binder) SetParamSlots(slots map[int]int) {
	if len(slots) == 0 {
		b.paramAt = nil
		return
	}
	b.paramAt = make(map[int]int, len(slots))
	for pos, slot := range slots {
		b.paramAt[pos] = slot + 1
	}
}

// paramOf resolves a literal's byte offset to its Const.Param encoding
// (0 when the literal is not a parameter slot).
func (b *Binder) paramOf(pos int) int {
	if b.paramAt == nil || pos <= 0 {
		return 0
	}
	return b.paramAt[pos]
}

// NextID exposes the allocator so later phases (normalization, the PDW
// optimizer's partial/final split) can mint fresh column IDs that never
// collide with bound ones.
func (b *Binder) NextID() ColumnID {
	id := b.nextID
	b.nextID++
	return id
}

// MaxID returns the highest ID allocated so far plus one; exported through
// the memo XML so the PDW side can continue the sequence.
func (b *Binder) MaxID() ColumnID { return b.nextID }

// SetMinID advances the allocator (used after importing a memo).
func (b *Binder) SetMinID(id ColumnID) {
	if id > b.nextID {
		b.nextID = id
	}
}

// scope is one level of name resolution; parent chains implement
// correlated subqueries.
type scope struct {
	parent *scope
	tables []scopeTable
}

type scopeTable struct {
	alias string
	cols  []ColumnMeta
}

func (s *scope) addTable(alias string, cols []ColumnMeta) {
	s.tables = append(s.tables, scopeTable{alias: alias, cols: cols})
}

// resolve finds a column by (qualifier, name); correlated lookups walk up
// the parent chain.
func (s *scope) resolve(qual, name string) (ColumnMeta, bool, error) {
	for sc := s; sc != nil; sc = sc.parent {
		var found []ColumnMeta
		for _, t := range sc.tables {
			if qual != "" && !strings.EqualFold(t.alias, qual) {
				continue
			}
			for _, c := range t.cols {
				if strings.EqualFold(c.Name, name) {
					found = append(found, c)
				}
			}
		}
		if len(found) == 1 {
			return found[0], true, nil
		}
		if len(found) > 1 {
			return ColumnMeta{}, false, fmt.Errorf("ambiguous column reference %q", name)
		}
	}
	return ColumnMeta{}, false, nil
}

// Bind binds a SELECT statement (possibly a UNION ALL chain) into a
// logical operator tree.
func (b *Binder) Bind(sel *sqlparser.SelectStmt) (*Tree, error) {
	return b.bindQuery(sel, nil)
}

// bindQuery dispatches between single blocks and UNION ALL chains.
func (b *Binder) bindQuery(sel *sqlparser.SelectStmt, outer *scope) (*Tree, error) {
	if sel.Union == nil {
		return b.bindSelect(sel, outer)
	}
	return b.bindUnion(sel, outer)
}

// bindUnion binds a UNION ALL chain: every branch is bound independently,
// validated for arity and comparable types, and projected onto one shared
// set of output column IDs (the UnionAll operator requires identical IDs
// on both inputs). ORDER BY/TOP of the final branch apply to the union.
func (b *Binder) bindUnion(sel *sqlparser.SelectStmt, outer *scope) (*Tree, error) {
	var branches []*sqlparser.SelectStmt
	for cur := sel; cur != nil; cur = cur.Union {
		branches = append(branches, cur)
	}
	last := branches[len(branches)-1]
	orderBy, top := last.OrderBy, last.Top
	lastCopy := *last
	lastCopy.OrderBy, lastCopy.Top, lastCopy.Union = nil, 0, nil
	for _, br := range branches[:len(branches)-1] {
		if len(br.OrderBy) > 0 || br.Top > 0 {
			return nil, fmt.Errorf("algebra: ORDER BY/TOP only allowed on the final UNION ALL branch")
		}
	}

	trees := make([]*Tree, len(branches))
	for i, br := range branches {
		stmt := br
		if i == len(branches)-1 {
			stmt = &lastCopy
		}
		clean := *stmt
		clean.Union = nil
		t, err := b.bindSelect(&clean, outer)
		if err != nil {
			return nil, fmt.Errorf("algebra: UNION ALL branch %d: %w", i+1, err)
		}
		trees[i] = t
	}

	first := trees[0].OutputCols()
	// Shared output columns: fresh IDs named after the first branch.
	shared := make([]ColumnMeta, len(first))
	for i, c := range first {
		shared[i] = ColumnMeta{ID: b.NextID(), Name: c.Name, Type: c.Type}
	}
	union := (*Tree)(nil)
	for bi, t := range trees {
		cols := t.OutputCols()
		if len(cols) != len(shared) {
			return nil, fmt.Errorf("algebra: UNION ALL branch %d has %d columns, want %d", bi+1, len(cols), len(shared))
		}
		defs := make([]ProjDef, len(shared))
		for i, c := range cols {
			if !types.Comparable(c.Type, shared[i].Type) {
				return nil, fmt.Errorf("algebra: UNION ALL column %d: %s vs %s", i+1, c.Type, shared[i].Type)
			}
			defs[i] = ProjDef{Expr: NewColRef(c), ID: shared[i].ID, Name: shared[i].Name}
		}
		branch := NewTree(&Project{Defs: defs}, t)
		if union == nil {
			union = branch
		} else {
			union = NewTree(&UnionAll{}, union, branch)
		}
	}

	if len(orderBy) > 0 || top > 0 {
		items := make([]outItem, len(shared))
		for i, c := range shared {
			items[i] = outItem{expr: NewColRef(c), name: c.Name}
		}
		var keys []SortKey
		for _, oi := range orderBy {
			id, err := b.resolveOrderKey(oi.Expr, items, shared, &scope{parent: outer})
			if err != nil {
				return nil, err
			}
			keys = append(keys, SortKey{ID: id, Desc: oi.Desc})
		}
		union = NewTree(&Sort{Keys: keys, Top: top}, union)
	}
	return union, nil
}

// BindCreateTable converts DDL into a catalog table.
func BindCreateTable(stmt *sqlparser.CreateTableStmt) (*catalog.Table, error) {
	t := &catalog.Table{Name: stmt.Name, PrimaryKey: stmt.PrimaryKey}
	for _, c := range stmt.Columns {
		t.Columns = append(t.Columns, catalog.Column{Name: c.Name, Type: c.Type})
	}
	if stmt.Replicated {
		t.Dist = catalog.Distribution{Kind: catalog.DistReplicated}
	} else {
		t.Dist = catalog.Distribution{Kind: catalog.DistHash, Column: stmt.HashColumn}
	}
	return t, nil
}

// bindSelect binds one query block. outer supplies correlation scope.
func (b *Binder) bindSelect(sel *sqlparser.SelectStmt, outer *scope) (*Tree, error) {
	s := &scope{parent: outer}

	// FROM: bind each factor, combining comma factors with cross joins.
	var tree *Tree
	for _, ref := range sel.From {
		t, err := b.bindTableRef(ref, s)
		if err != nil {
			return nil, err
		}
		if tree == nil {
			tree = t
		} else {
			tree = NewTree(&Join{Kind: JoinCross}, tree, t)
		}
	}
	if tree == nil {
		// FROM-less SELECT: a one-row, zero-column dual relation.
		tree = NewTree(&Values{Rows: [][]types.Value{{}}})
	}

	// WHERE.
	if sel.Where != nil {
		filter, err := b.bindExpr(sel.Where, s, false)
		if err != nil {
			return nil, err
		}
		if filter.Type() != types.KindBool && filter.Type() != types.KindNull {
			return nil, fmt.Errorf("algebra: WHERE clause is not boolean")
		}
		tree = NewTree(&Select{Filter: filter}, tree)
	}

	// Aggregation analysis.
	agg := &aggCollector{binder: b, scope: s}
	hasAggs := false
	for _, item := range sel.Items {
		if item.Expr != nil && containsAggregate(item.Expr) {
			hasAggs = true
		}
	}
	if sel.Having != nil && containsAggregate(sel.Having) {
		hasAggs = true
	}
	needGroup := hasAggs || len(sel.GroupBy) > 0

	var groupKeys []ColumnID
	groupExprs := map[string]ColumnMeta{} // bound group expr fingerprint → key column
	if needGroup {
		// Bind GROUP BY expressions; non-column expressions are computed by
		// a projection beneath the GroupBy.
		var preDefs []ProjDef
		for _, ge := range sel.GroupBy {
			e, err := b.bindExpr(ge, s, false)
			if err != nil {
				return nil, err
			}
			if c, ok := e.(*ColRef); ok {
				groupKeys = append(groupKeys, c.ID)
				continue
			}
			id := b.NextID()
			name := fmt.Sprintf("expr%d", id)
			preDefs = append(preDefs, ProjDef{Expr: e, ID: id, Name: name})
			groupKeys = append(groupKeys, id)
			groupExprs[e.Fingerprint()] = ColumnMeta{ID: id, Name: name, Type: e.Type()}
		}
		if len(preDefs) > 0 {
			// Pass through every input column alongside the computed keys.
			for _, c := range tree.OutputCols() {
				preDefs = append(preDefs, ProjDef{Expr: NewColRef(c), ID: c.ID, Name: c.Name})
			}
			tree = NewTree(&Project{Defs: preDefs}, tree)
		}
		agg.groupKeys = NewColSet(groupKeys...)
	}

	// Bind select items (rewriting aggregates to agg output refs).
	var items []outItem
	for i, item := range sel.Items {
		if item.Star {
			cols, err := starColumns(s, item.Table)
			if err != nil {
				return nil, err
			}
			for _, c := range cols {
				items = append(items, outItem{expr: NewColRef(c), name: c.Name})
			}
			continue
		}
		e, err := b.bindMaybeAgg(item.Expr, s, agg, needGroup)
		if err != nil {
			return nil, err
		}
		e = replaceGroupExprs(e, groupExprs)
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlparser.ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		items = append(items, outItem{expr: e, name: name})
	}

	var having Scalar
	if sel.Having != nil {
		if !needGroup {
			return nil, fmt.Errorf("algebra: HAVING without aggregation")
		}
		e, err := b.bindMaybeAgg(sel.Having, s, agg, true)
		if err != nil {
			return nil, err
		}
		having = replaceGroupExprs(e, groupExprs)
	}

	if needGroup {
		tree = NewTree(&GroupBy{Keys: groupKeys, Aggs: agg.defs}, tree)
		// Validate that non-aggregated select items only use group keys or
		// aggregate outputs.
		avail := tree.OutputColSet()
		for _, it := range items {
			if !ScalarCols(it.expr).SubsetOf(avail) {
				return nil, fmt.Errorf("algebra: select item %q references non-grouped columns", it.name)
			}
		}
		if having != nil {
			if !ScalarCols(having).SubsetOf(avail) {
				return nil, fmt.Errorf("algebra: HAVING references non-grouped columns")
			}
			tree = NewTree(&Select{Filter: having}, tree)
		}
	}

	// Final projection.
	defs := make([]ProjDef, len(items))
	outCols := make([]ColumnMeta, len(items))
	for i, it := range items {
		id := b.NextID()
		if c, ok := it.expr.(*ColRef); ok {
			id = c.ID
		}
		defs[i] = ProjDef{Expr: it.expr, ID: id, Name: it.name}
		outCols[i] = ColumnMeta{ID: id, Name: it.name, Type: it.expr.Type()}
	}
	tree = NewTree(&Project{Defs: defs}, tree)

	if sel.Distinct {
		keys := make([]ColumnID, len(outCols))
		for i, c := range outCols {
			keys[i] = c.ID
		}
		tree = NewTree(&GroupBy{Keys: keys}, tree)
	}

	// ORDER BY / TOP.
	if len(sel.OrderBy) > 0 {
		keys := make([]SortKey, 0, len(sel.OrderBy))
		for _, oi := range sel.OrderBy {
			id, err := b.resolveOrderKey(oi.Expr, items, outCols, s)
			if err != nil {
				return nil, err
			}
			keys = append(keys, SortKey{ID: id, Desc: oi.Desc})
		}
		tree = NewTree(&Sort{Keys: keys, Top: sel.Top}, tree)
	} else if sel.Top > 0 {
		tree = NewTree(&Sort{Top: sel.Top}, tree)
	}
	return tree, nil
}

// replaceGroupExprs substitutes references to computed group-by expressions
// (e.g. SELECT YEAR(d) ... GROUP BY YEAR(d)) with the group key column.
func replaceGroupExprs(e Scalar, groupExprs map[string]ColumnMeta) Scalar {
	if len(groupExprs) == 0 {
		return e
	}
	return RewriteScalar(e, func(x Scalar) Scalar {
		if m, ok := groupExprs[x.Fingerprint()]; ok {
			return NewColRef(m)
		}
		return nil
	})
}

// outItem is one bound select-list item prior to final projection.
type outItem struct {
	expr Scalar
	name string
}

// resolveOrderKey maps an ORDER BY expression to an output column: by
// ordinal, by alias, or by matching a select item's expression.
func (b *Binder) resolveOrderKey(e sqlparser.Expr, items []outItem, outCols []ColumnMeta, s *scope) (ColumnID, error) {
	if lit, ok := e.(*sqlparser.Lit); ok && lit.Value.Kind() == types.KindInt {
		n := lit.Value.Int()
		if n < 1 || int(n) > len(outCols) {
			return 0, fmt.Errorf("algebra: ORDER BY ordinal %d out of range", n)
		}
		return outCols[n-1].ID, nil
	}
	if cr, ok := e.(*sqlparser.ColRef); ok && cr.Table == "" {
		for i, it := range items {
			if strings.EqualFold(it.name, cr.Name) {
				return outCols[i].ID, nil
			}
		}
	}
	bound, err := b.bindExpr(e, s, true)
	if err != nil {
		return 0, err
	}
	fp := bound.Fingerprint()
	for i, it := range items {
		if it.expr.Fingerprint() == fp {
			return outCols[i].ID, nil
		}
	}
	if c, ok := bound.(*ColRef); ok {
		for _, oc := range outCols {
			if oc.ID == c.ID {
				return oc.ID, nil
			}
		}
	}
	return 0, fmt.Errorf("algebra: ORDER BY expression %s is not in the select list", sqlparser.FormatExpr(e))
}

func starColumns(s *scope, table string) ([]ColumnMeta, error) {
	var out []ColumnMeta
	for _, t := range s.tables {
		if table != "" && !strings.EqualFold(t.alias, table) {
			continue
		}
		out = append(out, t.cols...)
	}
	if len(out) == 0 {
		if table != "" {
			return nil, fmt.Errorf("algebra: unknown table %q in %s.*", table, table)
		}
		return nil, fmt.Errorf("algebra: SELECT * with empty scope")
	}
	return out, nil
}

func (b *Binder) bindTableRef(ref sqlparser.TableRef, s *scope) (*Tree, error) {
	switch r := ref.(type) {
	case *sqlparser.TableName:
		tbl := b.shell.Table(r.Name)
		if tbl == nil {
			return nil, fmt.Errorf("algebra: unknown table %q", r.Name)
		}
		alias := r.Alias
		if alias == "" {
			alias = tbl.Name
		}
		cols := make([]ColumnMeta, len(tbl.Columns))
		for i, c := range tbl.Columns {
			cols[i] = ColumnMeta{ID: b.NextID(), Name: c.Name, Qual: alias, Type: c.Type}
		}
		s.addTable(alias, cols)
		return NewTree(&Get{Table: tbl, Alias: alias, Cols: cols}), nil

	case *sqlparser.JoinRef:
		left, err := b.bindTableRef(r.Left, s)
		if err != nil {
			return nil, err
		}
		right, err := b.bindTableRef(r.Right, s)
		if err != nil {
			return nil, err
		}
		j := &Join{}
		switch r.Kind {
		case sqlparser.JoinInner:
			j.Kind = JoinInner
		case sqlparser.JoinCross:
			j.Kind = JoinCross
		case sqlparser.JoinLeft:
			j.Kind = JoinLeftOuter
		case sqlparser.JoinRight:
			j.Kind = JoinLeftOuter
			left, right = right, left
		case sqlparser.JoinFull:
			j.Kind = JoinFullOuter
		}
		if r.On != nil {
			on, err := b.bindExpr(r.On, s, false)
			if err != nil {
				return nil, err
			}
			j.On = on
		} else if j.Kind != JoinCross {
			return nil, fmt.Errorf("algebra: %s requires ON", r.Kind)
		}
		return NewTree(j, left, right), nil

	case *sqlparser.DerivedTable:
		sub, err := b.bindQuery(r.Select, s.parent)
		if err != nil {
			return nil, err
		}
		cols := make([]ColumnMeta, len(sub.OutputCols()))
		for i, c := range sub.OutputCols() {
			cols[i] = ColumnMeta{ID: c.ID, Name: c.Name, Qual: r.Alias, Type: c.Type}
		}
		s.addTable(r.Alias, cols)
		return sub, nil

	default:
		return nil, fmt.Errorf("algebra: unknown table reference %T", ref)
	}
}

// aggCollector accumulates aggregate definitions while binding expressions
// above a GroupBy.
type aggCollector struct {
	binder    *Binder
	scope     *scope
	groupKeys ColSet
	defs      []AggDef
}

// ref returns a reference to the aggregate's output column, reusing an
// existing definition with the same fingerprint.
func (a *aggCollector) ref(def AggDef) Scalar {
	fp := (AggDef{Func: def.Func, Arg: def.Arg, Distinct: def.Distinct}).Fingerprint()
	for _, d := range a.defs {
		if (AggDef{Func: d.Func, Arg: d.Arg, Distinct: d.Distinct}).Fingerprint() == fp {
			return NewColRef(ColumnMeta{ID: d.ID, Name: d.Name, Type: d.ResultType()})
		}
	}
	def.ID = a.binder.NextID()
	if def.Name == "" {
		def.Name = fmt.Sprintf("agg%d", def.ID)
	}
	a.defs = append(a.defs, def)
	return NewColRef(ColumnMeta{ID: def.ID, Name: def.Name, Type: def.ResultType()})
}

func containsAggregate(e sqlparser.Expr) bool {
	found := false
	var walk func(sqlparser.Expr)
	walk = func(e sqlparser.Expr) {
		switch x := e.(type) {
		case nil:
		case *sqlparser.BinExpr:
			walk(x.L)
			walk(x.R)
		case *sqlparser.NotExpr:
			walk(x.E)
		case *sqlparser.NegExpr:
			walk(x.E)
		case *sqlparser.FuncExpr:
			if x.IsAggregate() {
				found = true
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparser.BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlparser.LikeExpr:
			walk(x.E)
		case *sqlparser.IsNullExpr:
			walk(x.E)
		case *sqlparser.InExpr:
			walk(x.E)
		case *sqlparser.CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(x.Else)
		case *sqlparser.CastExpr:
			walk(x.E)
		}
	}
	walk(e)
	return found
}

// bindMaybeAgg binds an expression that may contain aggregate calls, which
// are lifted into the collector and replaced by output references.
func (b *Binder) bindMaybeAgg(e sqlparser.Expr, s *scope, agg *aggCollector, grouping bool) (Scalar, error) {
	if f, ok := e.(*sqlparser.FuncExpr); ok && f.IsAggregate() {
		if !grouping {
			return nil, fmt.Errorf("algebra: aggregate %s outside grouping context", f.Name)
		}
		return b.bindAggregate(f, s, agg)
	}
	switch x := e.(type) {
	case *sqlparser.BinExpr:
		l, err := b.bindMaybeAgg(x.L, s, agg, grouping)
		if err != nil {
			return nil, err
		}
		r, err := b.bindMaybeAgg(x.R, s, agg, grouping)
		if err != nil {
			return nil, err
		}
		return b.makeBinary(x.Op, l, r)
	case *sqlparser.NotExpr:
		inner, err := b.bindMaybeAgg(x.E, s, agg, grouping)
		if err != nil {
			return nil, err
		}
		return negateScalar(inner), nil
	case *sqlparser.NegExpr:
		inner, err := b.bindMaybeAgg(x.E, s, agg, grouping)
		if err != nil {
			return nil, err
		}
		if !inner.Type().Numeric() && inner.Type() != types.KindNull {
			return nil, fmt.Errorf("algebra: negation of %s", inner.Type())
		}
		return &Neg{E: inner}, nil
	case *sqlparser.CastExpr:
		inner, err := b.bindMaybeAgg(x.E, s, agg, grouping)
		if err != nil {
			return nil, err
		}
		return castScalar(inner, x.To)
	}
	return b.bindExpr(e, s, false)
}

func (b *Binder) bindAggregate(f *sqlparser.FuncExpr, s *scope, agg *aggCollector) (Scalar, error) {
	if f.Name == "AVG" {
		// AVG(x) := SUM(x) / COUNT(x); keeps the PDW partial/final split
		// uniform across aggregate functions.
		if f.Star || len(f.Args) != 1 {
			return nil, fmt.Errorf("algebra: AVG takes one argument")
		}
		arg, err := b.bindExpr(f.Args[0], s, false)
		if err != nil {
			return nil, err
		}
		if !arg.Type().Numeric() {
			return nil, fmt.Errorf("algebra: AVG over non-numeric type %s", arg.Type())
		}
		sum := agg.ref(AggDef{Func: AggSum, Arg: arg, Distinct: f.Distinct})
		cnt := agg.ref(AggDef{Func: AggCount, Arg: arg, Distinct: f.Distinct})
		return &Binary{Op: sqlparser.OpDiv, L: sum, R: cnt}, nil
	}
	var fn AggFunc
	switch f.Name {
	case "SUM":
		fn = AggSum
	case "COUNT":
		fn = AggCount
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	default:
		return nil, fmt.Errorf("algebra: unknown aggregate %s", f.Name)
	}
	if f.Star {
		if fn != AggCount {
			return nil, fmt.Errorf("algebra: %s(*) is not valid", f.Name)
		}
		return agg.ref(AggDef{Func: AggCount}), nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("algebra: %s takes one argument", f.Name)
	}
	arg, err := b.bindExpr(f.Args[0], s, false)
	if err != nil {
		return nil, err
	}
	if containsAggregate(f.Args[0]) {
		return nil, fmt.Errorf("algebra: nested aggregates are not allowed")
	}
	if (fn == AggSum) && !arg.Type().Numeric() && arg.Type() != types.KindNull {
		return nil, fmt.Errorf("algebra: SUM over non-numeric type %s", arg.Type())
	}
	return agg.ref(AggDef{Func: fn, Arg: arg, Distinct: f.Distinct}), nil
}

// negateScalar pushes NOT into comparisons where trivially possible.
func negateScalar(e Scalar) Scalar {
	switch x := e.(type) {
	case *Binary:
		if x.Op.IsComparison() {
			return &Binary{Op: x.Op.Negate(), L: x.L, R: x.R}
		}
	case *Not:
		return x.E
	case *IsNull:
		return &IsNull{E: x.E, Negated: !x.Negated}
	case *Subquery:
		if x.Kind == SubqueryExists || x.Kind == SubqueryIn {
			return &Subquery{Kind: x.Kind, Input: x.Input, Outer: x.Outer, Negated: !x.Negated}
		}
	}
	return &Not{E: e}
}

// castScalar folds constant casts and validates the conversion.
func castScalar(e Scalar, to types.Kind) (Scalar, error) {
	if c, ok := e.(*Const); ok {
		v, err := convertValue(c.Val, to)
		if err != nil {
			return nil, err
		}
		return &Const{Val: v}, nil
	}
	return &Cast{E: e, To: to}, nil
}

// convertValue converts a constant to a target kind.
func convertValue(v types.Value, to types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == to {
		return v, nil
	}
	switch to {
	case types.KindFloat:
		if v.Kind().Numeric() {
			return types.NewFloat(v.Float()), nil
		}
	case types.KindInt:
		if v.Kind() == types.KindFloat {
			return types.NewInt(int64(v.Float())), nil
		}
	case types.KindDate:
		if v.Kind() == types.KindString {
			return types.ParseDate(v.Str())
		}
	case types.KindString:
		return types.NewString(v.String()), nil
	}
	return types.Null, fmt.Errorf("algebra: cannot cast %s to %s", v.Kind(), to)
}

// makeBinary builds a binary expression with implicit string→date coercion
// on comparisons (TPC-H queries compare date columns to string literals).
func (b *Binder) makeBinary(op sqlparser.BinOp, l, r Scalar) (Scalar, error) {
	if op.IsComparison() {
		l2, r2 := coerceComparison(l, r)
		if !types.Comparable(l2.Type(), r2.Type()) {
			return nil, fmt.Errorf("algebra: cannot compare %s with %s", l.Type(), r.Type())
		}
		return &Binary{Op: op, L: l2, R: r2}, nil
	}
	if op == sqlparser.OpAnd || op == sqlparser.OpOr {
		return &Binary{Op: op, L: l, R: r}, nil
	}
	lt, rt := l.Type(), r.Type()
	if (lt.Numeric() || lt == types.KindNull) && (rt.Numeric() || rt == types.KindNull) {
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("algebra: arithmetic %s on %s and %s", op, lt, rt)
}

// coerceComparison upgrades string constants compared against dates.
func coerceComparison(l, r Scalar) (Scalar, Scalar) {
	fix := func(target, e Scalar) Scalar {
		if target.Type() != types.KindDate {
			return e
		}
		if c, ok := e.(*Const); ok && c.Val.Kind() == types.KindString {
			if d, err := types.ParseDate(c.Val.Str()); err == nil {
				// The coerced date still stands in for the original string
				// literal slot: re-binding splices a new (string) literal
				// into the same comparison context, where the per-node
				// binder repeats this exact coercion.
				return &Const{Val: d, Param: c.Param}
			}
		}
		return e
	}
	return fix(r, l), fix(l, r)
}

// bindExpr binds a scalar expression with no aggregate context.
func (b *Binder) bindExpr(e sqlparser.Expr, s *scope, allowMissing bool) (Scalar, error) {
	switch x := e.(type) {
	case *sqlparser.Lit:
		return &Const{Val: x.Value, Param: b.paramOf(x.Pos)}, nil

	case *sqlparser.ColRef:
		m, ok, err := s.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("algebra: unknown column %q", x.String())
		}
		return NewColRef(m), nil

	case *sqlparser.BinExpr:
		l, err := b.bindExpr(x.L, s, allowMissing)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.R, s, allowMissing)
		if err != nil {
			return nil, err
		}
		return b.makeBinary(x.Op, l, r)

	case *sqlparser.NotExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		return negateScalar(inner), nil

	case *sqlparser.NegExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		if !inner.Type().Numeric() && inner.Type() != types.KindNull {
			return nil, fmt.Errorf("algebra: negation of %s", inner.Type())
		}
		return &Neg{E: inner}, nil

	case *sqlparser.IsNullExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Negated: x.Negated}, nil

	case *sqlparser.LikeExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		pat, ok := x.Pattern.(*sqlparser.Lit)
		if !ok || pat.Value.Kind() != types.KindString {
			return nil, fmt.Errorf("algebra: LIKE pattern must be a string literal")
		}
		if inner.Type() != types.KindString && inner.Type() != types.KindNull {
			return nil, fmt.Errorf("algebra: LIKE on %s", inner.Type())
		}
		return &Like{E: inner, Pattern: pat.Value.Str(), Negated: x.Negated}, nil

	case *sqlparser.BetweenExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(x.Lo, s, allowMissing)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(x.Hi, s, allowMissing)
		if err != nil {
			return nil, err
		}
		ge, err := b.makeBinary(sqlparser.OpGe, inner, lo)
		if err != nil {
			return nil, err
		}
		le, err := b.makeBinary(sqlparser.OpLe, inner, hi)
		if err != nil {
			return nil, err
		}
		out := Scalar(&Binary{Op: sqlparser.OpAnd, L: ge, R: le})
		if x.Negated {
			out = &Not{E: out}
		}
		return out, nil

	case *sqlparser.InExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		if x.Select != nil {
			sub, err := b.bindQuery(x.Select, s)
			if err != nil {
				return nil, err
			}
			if len(sub.OutputCols()) != 1 {
				return nil, fmt.Errorf("algebra: IN subquery must return one column")
			}
			return &Subquery{Kind: SubqueryIn, Input: sub, Outer: inner, Negated: x.Negated}, nil
		}
		list := make([]Scalar, len(x.List))
		for i, el := range x.List {
			v, err := b.bindExpr(el, s, allowMissing)
			if err != nil {
				return nil, err
			}
			list[i] = v
		}
		return &InList{E: inner, List: list, Negated: x.Negated}, nil

	case *sqlparser.ExistsExpr:
		sub, err := b.bindQuery(x.Select, s)
		if err != nil {
			return nil, err
		}
		return &Subquery{Kind: SubqueryExists, Input: sub, Negated: x.Negated}, nil

	case *sqlparser.SubqueryExpr:
		sub, err := b.bindQuery(x.Select, s)
		if err != nil {
			return nil, err
		}
		if len(sub.OutputCols()) != 1 {
			return nil, fmt.Errorf("algebra: scalar subquery must return one column")
		}
		return &Subquery{Kind: SubqueryScalar, Input: sub}, nil

	case *sqlparser.CaseExpr:
		out := &Case{}
		for _, w := range x.Whens {
			cond, err := b.bindExpr(w.Cond, s, allowMissing)
			if err != nil {
				return nil, err
			}
			then, err := b.bindExpr(w.Then, s, allowMissing)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
		}
		if x.Else != nil {
			els, err := b.bindExpr(x.Else, s, allowMissing)
			if err != nil {
				return nil, err
			}
			out.Else = els
		}
		return out, nil

	case *sqlparser.CastExpr:
		inner, err := b.bindExpr(x.E, s, allowMissing)
		if err != nil {
			return nil, err
		}
		return castScalar(inner, x.To)

	case *sqlparser.FuncExpr:
		if x.IsAggregate() {
			return nil, fmt.Errorf("algebra: aggregate %s is not allowed here", x.Name)
		}
		return b.bindFunc(x, s, allowMissing)

	default:
		return nil, fmt.Errorf("algebra: unsupported expression %T", e)
	}
}

func (b *Binder) bindFunc(x *sqlparser.FuncExpr, s *scope, allowMissing bool) (Scalar, error) {
	args := make([]Scalar, len(x.Args))
	for i, a := range x.Args {
		v, err := b.bindExpr(a, s, allowMissing)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch x.Name {
	case "DATEADD":
		if len(args) != 3 {
			return nil, fmt.Errorf("algebra: DATEADD takes (part, n, date)")
		}
		// Coerce a string date argument.
		if c, ok := args[2].(*Const); ok && c.Val.Kind() == types.KindString {
			d, err := types.ParseDate(c.Val.Str())
			if err != nil {
				return nil, err
			}
			args[2] = &Const{Val: d}
		}
		f := &Func{Name: "DATEADD", Args: args, Out: types.KindDate}
		return foldConstFunc(f)
	case "YEAR":
		if len(args) != 1 {
			return nil, fmt.Errorf("algebra: YEAR takes one argument")
		}
		f := &Func{Name: "YEAR", Args: args, Out: types.KindInt}
		return foldConstFunc(f)
	case "SUBSTRING":
		if len(args) != 3 {
			return nil, fmt.Errorf("algebra: SUBSTRING takes (str, start, len)")
		}
		return &Func{Name: "SUBSTRING", Args: args, Out: types.KindString}, nil
	default:
		return nil, fmt.Errorf("algebra: unknown function %s", x.Name)
	}
}

// foldConstFunc evaluates a function over constant arguments at bind time.
func foldConstFunc(f *Func) (Scalar, error) {
	for _, a := range f.Args {
		if _, ok := a.(*Const); !ok {
			return f, nil
		}
	}
	v, err := EvalConstFunc(f.Name, constValues(f.Args))
	if err != nil {
		return nil, err
	}
	return &Const{Val: v}, nil
}

func constValues(args []Scalar) []types.Value {
	out := make([]types.Value, len(args))
	for i, a := range args {
		out[i] = a.(*Const).Val
	}
	return out
}

// EvalConstFunc evaluates a scalar function over concrete values; shared
// with the runtime expression evaluator.
func EvalConstFunc(name string, args []types.Value) (types.Value, error) {
	switch name {
	case "DATEADD":
		if args[1].IsNull() {
			return types.Null, nil
		}
		return types.DateAdd(args[0].Str(), args[1].Int(), args[2])
	case "YEAR":
		return types.DateYear(args[0])
	case "SUBSTRING":
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return types.Null, nil
		}
		s := args[0].Str()
		start := int(args[1].Int()) - 1
		n := int(args[2].Int())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return types.NewString(s[start:end]), nil
	}
	return types.Null, fmt.Errorf("algebra: unknown function %s", name)
}

SELECT MIN(k1) AS mn, MAX(v3) AS mx, COUNT(*) AS cnt
FROM cl00, cl01, cl02, cl03
WHERE c0 = c1
  AND c0 = c2
  AND c0 = c3
  AND c1 = c2
  AND c1 = c3
  AND c2 = c3
  AND v0 <= 303
  AND v1 <= 698
  AND v2 <= 728
  AND v3 <= 549

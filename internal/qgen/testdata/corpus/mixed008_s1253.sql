SELECT MIN(k2) AS mn, MAX(v4) AS mx, COUNT(*) AS cnt
FROM mi00, mi01, mi02, mi03, mi04, mi05, mi06, mi07
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k4 = f5
  AND k5 = f6
  AND k0 = h6
  AND k6 = f7
  AND v1 <= 281
  AND v2 <= 799
  AND v3 <= 504
  AND v4 <= 691
  AND v6 <= 680

SELECT g6, COUNT(*) AS cnt, SUM(v4) AS sv
FROM ch00, ch01, ch02, ch03, ch04, ch05, ch06, ch07
WHERE k0 = f1
  AND k1 = f2
  AND k2 = f3
  AND k3 = f4
  AND k4 = f5
  AND k5 = f6
  AND k6 = f7
  AND v0 <= 216
  AND v2 <= 670
  AND v6 <= 708
GROUP BY g6

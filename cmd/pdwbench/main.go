// Command pdwbench is the experiment harness: it regenerates every figure
// and claim of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded outcomes).
//
// Usage:
//
//	pdwbench [-sf 0.01] [-nodes 8] [-seed 42] [-trace-out t.json] [experiment ...]
//
// Experiments: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 e17 e18 e19 e20 e21 e22 e23 calibrate all
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"pdwqo"
	"pdwqo/internal/catalog"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
	"pdwqo/internal/normalize"
	"pdwqo/internal/stats"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
)

var (
	sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
	nodes    = flag.Int("nodes", 8, "compute nodes")
	seed     = flag.Int64("seed", 42, "generator seed")
	parallel = flag.Int("parallel", 0, "worker parallelism for enumeration and execution (0 = GOMAXPROCS, 1 = serial)")
	rowExec  = flag.Bool("row-exec", false, "use the row-at-a-time node executor instead of the vectorized one (ablation control arm)")
	sessions = flag.Int("sessions", 1000, "peak concurrent sessions for the e21 server load sweep")
	traceOut = flag.String("trace-out", "", `trace mode: record spans/counters across all experiments and write JSON to this file ("-" = stdout)`)

	// tracer is non-nil in trace mode; mustPlan and the main appliance
	// feed it.
	tracer *pdwqo.Tracer
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	experiments := map[string]func(*pdwqo.DB){
		"e1": e1, "e2": e2, "e3": e3, "e4": e4, "e5": e5, "e6": e6,
		"e7": e7, "e8": e8, "e9": e9, "e10": e10, "e11": e11, "e12": e12,
		"e13": e13, "e14": e14, "e15": e15, "e16": e16, "e17": e17, "e18": e18, "e19": e19, "e20": e20, "e21": e21, "e22": e22, "e23": e23, "calibrate": calibrate,
	}
	order := []string{"e1", "e2", "e3", "e4", "calibrate", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23"}

	db, err := pdwqo.OpenTPCH(*sf, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	db.SetParallelism(*parallel)
	db.SetRowExec(*rowExec)
	if *traceOut != "" {
		tracer = pdwqo.NewTracer()
		db.SetTracer(tracer)
	}
	fmt.Printf("appliance: TPC-H sf=%g, %d compute nodes, seed %d\n\n", *sf, *nodes, *seed)

	for _, a := range args {
		if a == "all" {
			for _, name := range order {
				experiments[name](db)
			}
			continue
		}
		fn, ok := experiments[a]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", a))
		}
		fn(db)
	}
	dumpTrace(db)
}

// dumpTrace writes the accumulated trace (spans plus the appliance's
// exported exec.* totals) as JSON when trace mode is on.
func dumpTrace(db *pdwqo.DB) {
	if tracer == nil {
		return
	}
	db.Appliance().Metrics.Export(tracer.Counters())
	data, err := tracer.JSON()
	if err != nil {
		fatal(err)
	}
	if *traceOut == "-" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*traceOut, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pdwbench: trace written to %s\n", *traceOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdwbench:", err)
	os.Exit(1)
}

func header(id, title string) {
	fmt.Printf("== %s: %s ==\n", id, title)
}

func mustPlan(db *pdwqo.DB, sql string, opts pdwqo.Options) *pdwqo.QueryPlan {
	if tracer != nil && opts.Tracer == nil {
		opts.Tracer = tracer
	}
	p, err := db.Optimize(sql, opts)
	if err != nil {
		fatal(err)
	}
	return p
}

func movesString(p *pdwqo.QueryPlan) string {
	counts := p.Moves()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k.String())
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		n := 0
		for kk, c := range counts {
			if kk.String() == k {
				n = c
			}
		}
		parts[i] = fmt.Sprintf("%s×%d", k, n)
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// --- E1: Figure 3 — serial memo and its augmentation ---

func e1(db *pdwqo.DB) {
	header("E1", "Figure 3 — serial MEMO and distributed augmentation")
	sql := `SELECT * FROM CUSTOMER C, ORDERS O
	        WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000`
	p := mustPlan(db, sql, pdwqo.Options{})
	fmt.Println("query:", strings.Join(strings.Fields(sql), " "))
	fmt.Println("\nserial memo (logical L / physical P expressions):")
	fmt.Println(p.Memo)
	fmt.Printf("exported MEMO XML: %d bytes\n", len(p.MemoXML))
	fmt.Println("\naugmented (distributed) plan chosen by PDW QO:")
	fmt.Println(p.Distributed.Root)
	fmt.Printf("options considered %d, retained %d across %d groups\n\n",
		p.Distributed.OptionsConsidered, p.Distributed.OptionsRetained, p.Distributed.Groups)
}

// --- E2: §2.4 — the two-step DSQL plan ---

func e2(db *pdwqo.DB) {
	header("E2", "§2.4 — DSQL plan for the Customer⋈Orders example")
	sql := `SELECT * FROM customer c, orders o
	        WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
	p := mustPlan(db, sql, pdwqo.Options{})
	fmt.Println(p.DSQL)
	res, err := db.ExecutePlan(p)
	if err != nil {
		fatal(err)
	}
	ref, err := db.ExecuteSerial(sql)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("executed: %d rows (serial reference: %d)\n\n", len(res.Rows), len(ref.Rows))
}

// --- E3: §3.2 — serial-best vs parallel-best join order ---

func e3(db *pdwqo.DB) {
	header("E3", "§3.2 — parallelizing the best serial plan is not enough")
	queries := []struct{ name, sql string }{
		{"C⋈O⋈L", `SELECT c_name, SUM(l_extendedprice) AS s FROM customer, orders, lineitem
			WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey GROUP BY c_name`},
		{"q10", mustTPCH("q10")},
		{"q18", mustTPCH("q18")},
	}
	fmt.Printf("%-8s %-14s %-14s %-8s %-28s %s\n", "query", "full cost", "baseline", "ratio", "full moves", "baseline moves")
	for _, q := range queries {
		full := mustPlan(db, q.sql, pdwqo.Options{Mode: pdwqo.ModeFull})
		base := mustPlan(db, q.sql, pdwqo.Options{Mode: pdwqo.ModeSerialBaseline})
		fmt.Printf("%-8s %-14.6g %-14.6g %-8.2f %-28s %s\n",
			q.name, full.Cost(), base.Cost(), ratio(base.Cost(), full.Cost()),
			movesString(full), movesString(base))
	}
	fmt.Println()
}

func mustTPCH(name string) string {
	sql, ok := pdwqo.TPCHQuery(name)
	if !ok {
		fatal(fmt.Errorf("missing query %s", name))
	}
	return sql
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return -1
	}
	return a / b
}

// --- E4: Figure 7 — TPC-H Q20 ---

func e4(db *pdwqo.DB) {
	header("E4", "Figure 7 — parallel plan for TPC-H Q20")
	p := mustPlan(db, mustTPCH("q20"), pdwqo.Options{})
	fmt.Println(p.DSQL)
	fmt.Println("moves:", movesString(p))
	var local, global int
	p.Distributed.Root.Visit(func(o *pdwqo.PlanOption) {
		if o.Op == nil {
			return
		}
		switch o.Op.OpName() {
		case "PartialGroupBy":
			local++
		case "FinalGroupBy":
			global++
		}
	})
	fmt.Printf("aggregation phases: %d local, %d global\n", local, global)
	res, err := db.ExecutePlan(p)
	if err != nil {
		fatal(err)
	}
	ref, err := db.ExecuteSerial(mustTPCH("q20"))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("executed: %d qualifying suppliers (serial reference: %d)\n\n", len(res.Rows), len(ref.Rows))
}

// --- Calibration (§3.3.3) ---

var calibrated *cost.Lambda

func calibrate(db *pdwqo.DB) {
	header("CAL", "§3.3.3 — λ calibration against the simulator")
	l := engine.Calibrate(200000)
	calibrated = &l
	fmt.Printf("%-14s %12s\n", "component", "λ (ns/byte)")
	fmt.Printf("%-14s %12.3f\n", "reader", l.ReaderDirect)
	fmt.Printf("%-14s %12.3f\n", "reader+hash", l.ReaderHash)
	fmt.Printf("%-14s %12.3f\n", "network", l.Network)
	fmt.Printf("%-14s %12.3f\n", "writer", l.Writer)
	fmt.Printf("%-14s %12.3f\n", "bulk copy", l.BulkCopy)
	if l.ReaderHash <= l.ReaderDirect {
		fmt.Println("note: hashing overhead not observable at this volume")
	}
	fmt.Println()
}

// --- E5: cost model validation — linearity and fitted-λ prediction ---

// e5 validates the §3.3.3 model shape against the simulator: DMS step
// response time must be linear in bytes moved (C = B·λ). An effective λ is
// fitted per move kind from small volumes and used to predict the largest
// volume (held out from the fit).
func e5(db *pdwqo.DB) {
	header("E5", "§3.3 — DMS cost: response time is linear in bytes (C = B·λ)")
	if calibrated == nil {
		calibrate(db)
	}
	type obs struct {
		bytes float64
		dur   float64 // ms
	}
	measure := func(scale float64, sql string, kind cost.MoveKind) obs {
		db2, err := pdwqo.OpenTPCH(*sf*scale, *nodes, *seed)
		if err != nil {
			fatal(err)
		}
		p := mustPlan(db2, sql, pdwqo.Options{})
		var best *engine.StepMetric
		for i := 0; i < 3; i++ {
			a := db2.Appliance()
			before := a.Metrics.StepCount()
			if _, err := db2.ExecutePlan(p); err != nil {
				fatal(err)
			}
			for _, m := range a.Metrics.Snapshot()[before:] {
				m := m
				if m.IsMove && m.Move == kind && (best == nil || m.Duration < best.Duration) {
					best = &m
				}
			}
		}
		if best == nil {
			fatal(fmt.Errorf("no %s step for %q at scale %g", kind, sql, scale))
		}
		return obs{bytes: float64(best.Bytes), dur: float64(best.Duration.Nanoseconds()) / 1e6}
	}

	workloads := []struct {
		name string
		sql  string
		kind cost.MoveKind
	}{
		{"shuffle", `SELECT * FROM customer c, orders o WHERE c.c_custkey = o.o_custkey`, cost.Shuffle},
		{"broadcast", `SELECT l_quantity FROM part, lineitem WHERE p_partkey = l_partkey AND p_name LIKE 'forest%'`, cost.Broadcast},
	}
	scales := []float64{0.25, 0.5, 1, 2}
	fmt.Printf("%-10s %-7s %14s %12s %14s\n", "move", "scale", "bytes", "time(ms)", "ns/byte")
	for _, w := range workloads {
		var pts []obs
		for _, sc := range scales {
			o := measure(sc, w.sql, w.kind)
			pts = append(pts, o)
			fmt.Printf("%-10s %-7g %14.0f %12.3f %14.3f\n", w.name, sc, o.bytes, o.dur, o.dur*1e6/o.bytes)
		}
		// Fit λ on all but the largest scale; predict the largest.
		var num, den float64
		for _, o := range pts[:len(pts)-1] {
			num += o.bytes * o.dur
			den += o.bytes * o.bytes
		}
		lambda := num / den
		last := pts[len(pts)-1]
		pred := lambda * last.bytes
		fmt.Printf("%-10s fitted λ=%.3f ns/byte; predicted %0.3fms vs measured %0.3fms (ratio %.2f)\n",
			w.name, lambda*1e6, pred, last.dur, ratio(last.dur, pred))
	}

	fmt.Println("\nmodeled-cost linearity (analytic check):")
	model := cost.NewModel(*nodes, *calibrated)
	base := model.MoveCost(cost.Shuffle, 1000, 100)
	for _, mult := range []float64{1, 2, 4, 8, 16} {
		c := model.MoveCost(cost.Shuffle, 1000*mult, 100)
		fmt.Printf("  bytes ×%-4g cost ×%.3f\n", mult, c/base)
	}
	fmt.Println()
}

// --- E6: the seven DMS operations across topologies ---

func e6(db *pdwqo.DB) {
	header("E6", "§3.3.2 — modeled cost of the seven DMS operations vs topology")
	l := cost.DefaultLambda()
	if calibrated != nil {
		l = *calibrated
	}
	kinds := []cost.MoveKind{
		cost.Shuffle, cost.PartitionMove, cost.ControlNodeMove, cost.Broadcast,
		cost.Trim, cost.ReplicatedBroadcast, cost.RemoteCopySingle,
	}
	const rows, width = 1e6, 50
	fmt.Printf("%-22s", "operation")
	ns := []int{2, 4, 8, 16, 32}
	for _, n := range ns {
		fmt.Printf(" %12s", fmt.Sprintf("N=%d", n))
	}
	fmt.Println()
	for _, k := range kinds {
		fmt.Printf("%-22s", k)
		for _, n := range ns {
			m := cost.NewModel(n, l)
			fmt.Printf(" %12.4g", m.MoveCost(k, rows, width))
		}
		fmt.Println()
	}
	fmt.Println("(cost units: λ·bytes; shuffle/trim scale with N, broadcast and gathers do not)")
	fmt.Println()
}

// --- E7: plan quality, full vs parallelized-serial baseline ---

func e7(db *pdwqo.DB) {
	header("E7", "headline claim — PDW QO vs parallelizing the best serial plan")
	fmt.Printf("%-6s %-13s %-13s %-7s %-11s %-11s %-7s %s\n",
		"query", "cost(full)", "cost(base)", "ratio", "time(full)", "time(base)", "speedup", "rows")
	var worse, equal int
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		full := mustPlan(db, sql, pdwqo.Options{Mode: pdwqo.ModeFull})
		base := mustPlan(db, sql, pdwqo.Options{Mode: pdwqo.ModeSerialBaseline})
		tf, rf := timeExec(db, full)
		tb, rb := timeExec(db, base)
		if rf != rb {
			fatal(fmt.Errorf("%s: result mismatch %d vs %d", name, rf, rb))
		}
		r := ratio(base.Cost(), full.Cost())
		if r > 1.001 {
			worse++
		} else {
			equal++
		}
		fmt.Printf("%-6s %-13.6g %-13.6g %-7.2f %-11s %-11s %-7.2f %d\n",
			name, full.Cost(), base.Cost(), r,
			tf.Round(time.Millisecond), tb.Round(time.Millisecond),
			ratio(float64(tb), float64(tf)), rf)
	}
	fmt.Printf("baseline strictly worse on %d queries, tied on %d; never better.\n\n", worse, equal)
}

func timeExec(db *pdwqo.DB, p *pdwqo.QueryPlan) (time.Duration, int) {
	best := time.Duration(1 << 62)
	rows := 0
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := db.ExecutePlan(p)
		if err != nil {
			fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		rows = len(res.Rows)
	}
	return best, rows
}

// --- E8: interesting-property retention ablation ---

func e8(db *pdwqo.DB) {
	header("E8", "Figure 4 step 06.ii — pruning with vs without interesting properties")
	fmt.Printf("%-6s %-13s %-13s %-7s %-9s %s\n", "query", "cost(on)", "cost(off)", "ratio", "opts(on)", "opts(off)")
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		on := mustPlan(db, sql, pdwqo.Options{})
		off := mustPlan(db, sql, pdwqo.Options{DisableInterestingRetention: true})
		fmt.Printf("%-6s %-13.6g %-13.6g %-7.2f %-9d %d\n",
			name, on.Cost(), off.Cost(), ratio(off.Cost(), on.Cost()),
			on.Distributed.OptionsRetained, off.Distributed.OptionsRetained)
	}
	fmt.Println()
}

// --- E9: partial/final aggregation split ablation ---

func e9(db *pdwqo.DB) {
	header("E9", "§4 — partial/final aggregation split ablation")
	queries := []struct{ name, sql string }{
		{"widegb", `SELECT l_partkey, COUNT(*) AS c, SUM(l_extendedprice) AS s,
			MIN(l_shipdate) AS d, MAX(l_quantity) AS q FROM lineitem GROUP BY l_partkey`},
		{"scalar", `SELECT SUM(l_extendedprice) AS s, COUNT(*) AS c FROM lineitem`},
		{"q01", mustTPCH("q01")},
		{"q20", mustTPCH("q20")},
	}
	fmt.Printf("%-8s %-13s %-13s %-7s %-14s %s\n", "query", "cost(split)", "cost(off)", "ratio", "bytes(split)", "bytes(off)")
	for _, q := range queries {
		on := mustPlan(db, q.sql, pdwqo.Options{})
		off := mustPlan(db, q.sql, pdwqo.Options{DisableAggSplit: true})
		bOn := bytesMoved(db, on)
		bOff := bytesMoved(db, off)
		fmt.Printf("%-8s %-13.6g %-13.6g %-7.2f %-14d %d\n",
			q.name, on.Cost(), off.Cost(), ratio(off.Cost(), on.Cost()), bOn, bOff)
	}
	fmt.Println()
}

func bytesMoved(db *pdwqo.DB, p *pdwqo.QueryPlan) int64 {
	a := db.Appliance()
	before := a.Metrics.TotalBytesMoved()
	if _, err := db.ExecutePlan(p); err != nil {
		fatal(err)
	}
	return a.Metrics.TotalBytesMoved() - before
}

// --- E10: optimization budget (timeout) sweep ---

func e10(db *pdwqo.DB) {
	header("E10", "§3.1 — optimizer timeout: plan quality vs budget, with/without seeding")
	// q05's join graph with a deliberately scrambled FROM order: the
	// normalized initial plan starts from cross joins, so a starved search
	// depends entirely on what the memo was seeded with.
	sql := `SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
	        FROM customer, region, lineitem, supplier, orders, nation
	        WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	          AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	          AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	          AND r_name = 'ASIA'
	          AND o_orderdate >= '1994-01-01'
	          AND o_orderdate < DATEADD(year, 1, '1994-01-01')
	        GROUP BY n_name`
	fmt.Printf("%-8s %-9s %-13s %-13s %-8s %s\n", "budget", "groups", "cost", "cost(seeded)", "ratio", "exhausted")
	for _, budget := range []int{50, 200, 1000, 5000, 20000} {
		p := mustPlan(db, sql, pdwqo.Options{Budget: budget})
		ps := mustPlan(db, sql, pdwqo.Options{Budget: budget, SeedCollocated: true})
		fmt.Printf("%-8d %-9d %-13.6g %-13.6g %-8.2f %v\n",
			budget, p.Memo.NumGroups(), p.Cost(), ps.Cost(), ratio(p.Cost(), ps.Cost()), p.Memo.Exhausted())
	}
	fmt.Println("(the paper's seeding: distribution-aware initial plans keep quality when the")
	fmt.Println(" timeout bites before exploration reaches collocated join orders)")
	fmt.Println()
}

// --- E11: end-to-end correctness ---

func e11(db *pdwqo.DB) {
	header("E11", "Figure 2 pipeline — distributed results ≡ single-node reference")
	fmt.Printf("%-6s %-8s %-8s %s\n", "query", "dist", "serial", "match")
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		dist, err := db.Execute(sql, pdwqo.Options{})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		ref, err := db.ExecuteSerial(sql)
		if err != nil {
			fatal(fmt.Errorf("%s serial: %w", name, err))
		}
		match := len(dist.Rows) == len(ref.Rows)
		fmt.Printf("%-6s %-8d %-8d %v\n", name, len(dist.Rows), len(ref.Rows), match)
		if !match {
			fatal(fmt.Errorf("%s: result mismatch", name))
		}
	}
	fmt.Println()
}

// --- E12: statistics merge quality ---

func e12(db *pdwqo.DB) {
	header("E12", "§2.2 — local→global statistics merge accuracy")
	shell, data, err := tpch.BuildShell(*sf, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-12s %-14s %12s %12s %8s\n", "table", "column", "true NDV", "merged NDV", "err%")
	for _, tbl := range tpch.Tables() {
		if tbl.Dist.Kind != catalog.DistHash {
			// Replicated tables are not merged (one replica's stats are
			// used directly).
			continue
		}
		rows := data[tbl.Name]
		for ci, col := range tbl.Columns {
			vals := make([]types.Value, len(rows))
			for ri, r := range rows {
				vals[ri] = r[ci]
			}
			direct := stats.BuildColumn(vals)
			merged := shell.Table(tbl.Name).Stats.Column(col.Name)
			if merged == nil || direct.NDV == 0 {
				continue
			}
			errPct := 100 * (merged.NDV - direct.NDV) / direct.NDV
			fmt.Printf("%-12s %-14s %12.0f %12.1f %8.1f\n", tbl.Name, col.Name, direct.NDV, merged.NDV, errPct)
		}
	}
	// Cardinality estimation vs actual for the suite roots.
	fmt.Printf("\n%-6s %14s %14s %8s\n", "query", "estimated", "actual", "q-error")
	for _, q := range tpch.Queries() {
		est, actual, err := rootCardinality(db, q.SQL)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", q.Name, err))
		}
		qe := qerror(est, actual)
		fmt.Printf("%-6s %14.4g %14d %8.2f\n", q.Name, est, actual, qe)
	}
	fmt.Println()
}

// --- E13: the uniformity assumption under skew ---

// e13 violates the §3.3.1 uniformity assumption with power-law foreign
// keys: the modeled shuffle cost (which divides bytes evenly by N) stays
// flat while the real per-node maximum share — the actual response-time
// bound — grows toward the full volume.
func e13(db *pdwqo.DB) {
	header("E13", "§3.3.1 — uniformity assumption under foreign-key skew")
	// A raw shuffle of orders on the (skewed) o_custkey: the narrow
	// projection makes the shuffle cheaper than broadcasting customer, and
	// no aggregation below the move absorbs the imbalance.
	sql := `SELECT c_name, o_orderkey FROM customer, orders WHERE c_custkey = o_custkey`
	fmt.Printf("%-6s %-13s %-12s %-14s %-10s %s\n",
		"skew", "modeled", "bytes", "max-node", "imbalance", "time(ms)")
	for _, skew := range []float64{1, 1.5, 2, 4, 8} {
		dbs, err := pdwqo.OpenTPCHSkewed(*sf, *nodes, *seed, skew)
		if err != nil {
			fatal(err)
		}
		p := mustPlan(dbs, sql, pdwqo.Options{})
		a := dbs.Appliance()
		before := a.Metrics.StepCount()
		var best time.Duration = 1 << 62
		var m engine.StepMetric
		for i := 0; i < 3; i++ {
			if _, err := dbs.ExecutePlan(p); err != nil {
				fatal(err)
			}
		}
		for _, sm := range a.Metrics.Snapshot()[before:] {
			if sm.IsMove && sm.Duration < best {
				best, m = sm.Duration, sm
			}
		}
		imbalance := 0.0
		if m.Bytes > 0 {
			imbalance = float64(m.MaxNodeBytes) * float64(*nodes) / float64(m.Bytes)
		}
		fmt.Printf("%-6g %-13.6g %-12d %-14d %-10.2f %.3f\n",
			skew, p.Cost(), m.Bytes, m.MaxNodeBytes, imbalance, float64(best.Nanoseconds())/1e6)
	}
	fmt.Println("(imbalance = max-node share ÷ uniform share; the model assumes 1.0)")
	fmt.Println()
}

// --- E14: parallel appliance — per-node fan-out speedup ---

// e14 measures the wall-clock effect of fanning one step's node-local work
// out across workers. A simulated per-node dispatch latency makes the
// overlap observable on any host: a serial appliance pays N round trips
// per step, the parallel one pays ~1.
func e14(db *pdwqo.DB) {
	header("E14", "parallel appliance — per-node fan-out speedup")
	queries := []string{"q01", "q06", "q12", "q14"}
	plans := make([]*pdwqo.QueryPlan, len(queries))
	for i, name := range queries {
		plans[i] = mustPlan(db, mustTPCH(name), pdwqo.Options{})
	}
	a := db.Appliance()
	prevPar, prevLat := a.Parallelism, a.NodeLatency
	a.NodeLatency = 5 * time.Millisecond
	defer func() { a.Parallelism, a.NodeLatency = prevPar, prevLat }()

	run := func(par int) time.Duration {
		a.Parallelism = par
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			for _, p := range plans {
				if _, err := db.ExecutePlan(p); err != nil {
					fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := run(1)
	fmt.Printf("workload: %s, %d nodes, simulated dispatch latency %s\n",
		strings.Join(queries, "+"), *nodes, a.NodeLatency)
	fmt.Printf("%-12s %-12s %s\n", "parallelism", "time", "speedup")
	fmt.Printf("%-12d %-12s %.2f\n", 1, serial.Round(time.Millisecond), 1.0)
	for _, par := range []int{2, 4, 8} {
		d := run(par)
		fmt.Printf("%-12d %-12s %.2f\n", par, d.Round(time.Millisecond), ratio(float64(serial), float64(d)))
	}
	fmt.Println("(results stay byte-identical at every setting; see internal/difftest)")
	fmt.Println()
}

// --- E15: robustness — execution under injected faults ---

// e15 perturbs the TPC-H suite with seeded random fault plans and
// measures the robustness contract: with per-step retries enabled, every
// absorbed fault still yields the fault-free row count (determinism under
// perturbation) at a bounded latency overhead; schedules that exhaust the
// retry budget surface as typed StepErrors, never panics or leaks.
func e15(db *pdwqo.DB) {
	header("E15", "robustness — per-step retry under injected faults")
	a := db.Appliance()
	defer func() {
		db.SetFaultPlan(nil)
		db.SetResilience(0, 0)
	}()
	const maxRetries = 3
	fmt.Printf("%-6s %-7s %-8s %-7s %-11s %-11s %s\n",
		"query", "faults", "retries", "rows", "clean", "chaos", "outcome")
	var absorbed, failed int
	for i, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		p := mustPlan(db, sql, pdwqo.Options{})
		db.SetFaultPlan(nil)
		db.SetResilience(0, 0)
		cleanT, cleanRows := timeExec(db, p)

		faults := pdwqo.RandomFaultPlan(int64(1000+i), len(p.DSQL.Steps), *nodes)
		db.SetFaultPlan(faults)
		db.SetResilience(maxRetries, 0)
		retries0, faults0 := a.Metrics.RetryCount(), a.Metrics.FaultCount()
		start := time.Now()
		res, err := db.ExecutePlan(p)
		chaosT := time.Since(start)
		nFaults := a.Metrics.FaultCount() - faults0
		nRetries := a.Metrics.RetryCount() - retries0

		outcome := "absorbed"
		rows := 0
		switch {
		case err != nil:
			var se *pdwqo.StepError
			if !errors.As(err, &se) {
				fatal(fmt.Errorf("%s: untyped chaos failure: %w", name, err))
			}
			outcome = fmt.Sprintf("typed failure (%v on step %d)", se.Kind, se.Step)
			failed++
		case len(res.Rows) != cleanRows:
			fatal(fmt.Errorf("%s: chaos run returned %d rows, clean run %d", name, len(res.Rows), cleanRows))
		default:
			rows = len(res.Rows)
			absorbed++
		}
		fmt.Printf("%-6s %-7d %-8d %-7d %-11s %-11s %s\n",
			name, nFaults, nRetries, rows,
			cleanT.Round(time.Millisecond), chaosT.Round(time.Millisecond), outcome)
	}
	fmt.Printf("absorbed by retries on %d queries, typed failures on %d; no panics, no leaked temps.\n\n",
		absorbed, failed)
}

// --- E16: cost-model accuracy — predicted vs measured movement (q-error) ---

// e16 quantifies the §3.3 cost model's accuracy the way EXPLAIN ANALYZE
// does: every move step's predicted rows×width is reconciled against the
// bytes DMS actually moved, summarized per query as the geometric mean
// and max q-error (q = max(pred/act, act/pred), 1 = perfect). See
// EXPERIMENTS.md E16 for methodology.
func e16(db *pdwqo.DB) {
	header("E16", "§3.3 — cost-model accuracy: predicted vs actual movement (q-error)")
	a := db.Appliance()
	fmt.Printf("%-6s %-6s %14s %14s %9s %9s %9s %9s\n",
		"query", "moves", "est bytes", "act bytes", "qB mean", "qB max", "qR mean", "qR max")
	var suiteB, suiteR []float64
	for _, name := range pdwqo.TPCHQueryNames() {
		p := mustPlan(db, mustTPCH(name), pdwqo.Options{})
		before := a.Metrics.StepCount()
		if _, err := db.ExecutePlan(p); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		acts := map[int]engine.StepMetric{}
		for _, m := range a.Metrics.Snapshot()[before:] {
			acts[m.StepID] = m
		}
		var qB, qR []float64
		var estB, actB float64
		for _, s := range p.DSQL.Steps {
			if s.Kind != dsql.StepMove {
				continue
			}
			m, ok := acts[s.ID]
			if !ok {
				continue
			}
			estB += s.EstBytes()
			actB += float64(m.Bytes)
			qB = append(qB, cost.QError(s.EstBytes(), float64(m.Bytes)))
			qR = append(qR, cost.QError(s.Rows, float64(m.Rows)))
		}
		if len(qB) == 0 {
			fmt.Printf("%-6s %-6d %14s %14s (no data movement)\n", name, 0, "-", "-")
			continue
		}
		suiteB = append(suiteB, qB...)
		suiteR = append(suiteR, qR...)
		fmt.Printf("%-6s %-6d %14.6g %14.0f %9.3g %9.3g %9.3g %9.3g\n",
			name, len(qB), estB, actB,
			geoMean(qB), maxOf(qB), geoMean(qR), maxOf(qR))
	}
	finB, infB := splitFinite(suiteB)
	finR, _ := splitFinite(suiteR)
	fmt.Printf("suite: %d move steps (%d with a zero-side estimate, excluded from aggregates)\n",
		len(suiteB), infB)
	fmt.Printf("  bytes q-error mean %.3g max %.3g; rows q-error mean %.3g max %.3g\n",
		geoMean(finB), maxOf(finB), geoMean(finR), maxOf(finR))
	fmt.Println("(q = max(pred/act, act/pred); 1 = perfect estimate. Same metric as EXPLAIN ANALYZE.)")
	fmt.Println()
}

// splitFinite drops the +Inf q-errors (a zero on exactly one side —
// typically an anti-join the model estimates empty) and counts them, so
// the geometric mean stays meaningful while the misses stay visible.
func splitFinite(xs []float64) (finite []float64, inf int) {
	for _, x := range xs {
		if math.IsInf(x, 0) {
			inf++
			continue
		}
		finite = append(finite, x)
	}
	return finite, inf
}

// geoMean is the geometric mean — the standard q-error aggregate.
func geoMean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func rootCardinality(db *pdwqo.DB, sql string) (float64, int, error) {
	p, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		return 0, 0, err
	}
	res, err := db.ExecutePlan(p)
	if err != nil {
		return 0, 0, err
	}
	return p.Distributed.Root.Rows, len(res.Rows), nil
}

func qerror(est float64, actual int) float64 {
	a := float64(actual)
	if a < 1 {
		a = 1
	}
	if est < 1 {
		est = 1
	}
	if est > a {
		return est / a
	}
	return a / est
}

// e17 measures the shared plan cache on a repeated parameterized
// workload: each TPC-H query is compiled cold once, then re-optimized
// over a stream of same-shape instances with rotating constants. A
// production control node serves such a stream almost entirely from its
// cache; the table reports how much compile time that saves and which
// queries re-bind as templates versus pinning to exact constants
// (a value-dependent fold consumed a literal slot).
func e17(db *pdwqo.DB) {
	header("E17", "shared plan cache — hit rate and compile-time savings on a repeated workload")
	const reps = 10
	db.SetPlanCache(4096)
	defer db.SetPlanCache(-1)
	fmt.Printf("%-6s %5s %12s %12s %9s  %s\n",
		"query", "slots", "cold", "cached/op", "speedup", "statuses (m=miss h=hit)")
	var coldTotal, cachedTotal time.Duration
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		pq, err := normalize.Parameterize(sql)
		if err != nil {
			fatal(fmt.Errorf("%s: parameterize: %w", name, err))
		}
		db.PlanCache().Purge()

		start := time.Now()
		if _, err := db.Optimize(sql, pdwqo.Options{}); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		cold := time.Since(start)
		coldTotal += cold

		var cached time.Duration
		statuses := map[string]int{}
		for rep := 1; rep <= reps; rep++ {
			variant, err := pq.Splice(variantTexts(pq, rep))
			if err != nil {
				fatal(fmt.Errorf("%s: splice: %w", name, err))
			}
			start := time.Now()
			plan, err := db.Optimize(variant, pdwqo.Options{})
			if err != nil {
				fatal(fmt.Errorf("%s rep %d: %w", name, rep, err))
			}
			cached += time.Since(start)
			statuses[plan.CacheStatus]++
		}
		cachedTotal += cached
		fmt.Printf("%-6s %5d %12v %12v %8.0fx  m=%d h=%d\n",
			name, len(pq.Lits), cold.Round(time.Microsecond),
			(cached / reps).Round(time.Microsecond),
			float64(cold)/(float64(cached)/reps), statuses["miss"], statuses["hit"])
	}
	m := db.PlanCache().Metrics()
	fmt.Printf("suite: cold compile %v total; cached re-optimize %v/op mean\n",
		coldTotal.Round(time.Millisecond),
		(cachedTotal / time.Duration(len(pdwqo.TPCHQueryNames())*reps)).Round(time.Microsecond))
	fmt.Printf("cache: hits=%d shared=%d misses=%d compiles=%d evictions=%d invalidations=%d\n",
		m.Hits, m.Shared, m.Misses, m.Compiles, m.Evictions, m.Invalidations)
	fmt.Println("(a miss column > 1 means the query pins to exact constants: a fold consumed a literal slot)")
	fmt.Println()
}

// variantTexts renders a same-shape constant vector for rep: integers
// shift by rep and floats scale slightly (both preserve pairwise
// distinctness between slots, so the slot pattern — and the shape
// fingerprint — is unchanged), strings keep their original value.
func variantTexts(pq *normalize.ParamQuery, rep int) []string {
	out := make([]string, len(pq.Lits))
	for i, l := range pq.Lits {
		switch l.Kind {
		case normalize.LitInt:
			out[i] = fmt.Sprint(l.Val.Int() + int64(rep))
		case normalize.LitFloat:
			out[i] = fmt.Sprintf("%g", l.Val.Float()*(1+0.001*float64(rep)))
		default:
			out[i] = l.Val.SQLLiteral()
		}
	}
	return out
}

// e18 measures the cost of static plan verification: every TPC-H query
// is compiled cold with and without Options.Verify, and the table
// reports the delta as a fraction of the cold compile. Verification
// re-derives the optimizer's distribution, dataflow, and MEMO
// invariants from scratch (an independent N-version of the core
// rules), so a clean sweep here is also a correctness statement: no
// shipped plan violates them.
func e18(db *pdwqo.DB) {
	header("E18", "static plan verification — overhead vs a cold compile")
	const reps = 5
	db.SetPlanCache(-1)
	fmt.Printf("%-6s %12s %12s %9s\n", "query", "cold", "verified", "overhead")
	var coldTotal, verifiedTotal time.Duration
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		var cold, verified time.Duration
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			if _, err := db.Optimize(sql, pdwqo.Options{}); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			cold += time.Since(start)
			start = time.Now()
			if _, err := db.Optimize(sql, pdwqo.Options{Verify: true}); err != nil {
				fatal(fmt.Errorf("%s (verify): %w", name, err))
			}
			verified += time.Since(start)
		}
		coldTotal += cold
		verifiedTotal += verified
		fmt.Printf("%-6s %12v %12v %8.1f%%\n",
			name, (cold / reps).Round(time.Microsecond),
			(verified / reps).Round(time.Microsecond),
			100*(float64(verified)-float64(cold))/float64(cold))
	}
	fmt.Printf("suite: cold %v, verified %v, overhead %.1f%% (bar: <5%%)\n",
		coldTotal.Round(time.Millisecond), verifiedTotal.Round(time.Millisecond),
		100*(float64(verifiedTotal)-float64(coldTotal))/float64(coldTotal))
	fmt.Println("(every verified run returned cleanly: no TPC-H plan violates the invariants)")
	fmt.Println()
}

// --- E19: partial-aggregate pushdown — shuffle bytes and wall clock ---

// e19 quantifies what the split buys at execution time on the
// aggregate-heavy slice of TPC-H: every query whose winning plan adopts
// a partial aggregation runs with the split enumerated and
// force-disabled, and the table reports the DMS bytes actually moved
// and the wall clock of both arms. The metamorphic suite in
// internal/difftest certifies the two arms return identical relations;
// this experiment shows why the split wins — the shuffle carries
// per-node aggregate states instead of raw rows.
func e19(db *pdwqo.DB) {
	header("E19", "§4 — partial-aggregate pushdown: DMS bytes and wall clock, split vs unsplit")
	const reps = 3
	fmt.Printf("%-6s %-13s %-13s %-10s %-12s %s\n",
		"query", "bytes(split)", "bytes(off)", "reduction", "time(split)", "time(off)")
	var adopted, reduced int
	var totalOn, totalOff int64
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		on := mustPlan(db, sql, pdwqo.Options{})
		if !strings.Contains(on.Explain(), "PartialGroupBy") {
			continue
		}
		adopted++
		off := mustPlan(db, sql, pdwqo.Options{DisableAggSplit: true})
		bOn, tOn := runMeasured(db, on, reps)
		bOff, tOff := runMeasured(db, off, reps)
		totalOn += bOn
		totalOff += bOff
		if bOn < bOff {
			reduced++
		}
		fmt.Printf("%-6s %-13d %-13d %9.1f%% %-12v %v\n",
			name, bOn, bOff, 100*(1-ratio(float64(bOn), float64(bOff))),
			tOn.Round(time.Microsecond), tOff.Round(time.Microsecond))
	}
	fmt.Printf("%d/%d TPC-H plans adopt the split; %d of them move fewer DMS bytes "+
		"(suite: %d vs %d bytes, %.1f%% less)\n",
		adopted, len(pdwqo.TPCHQueryNames()), reduced,
		totalOn, totalOff, 100*(1-ratio(float64(totalOn), float64(totalOff))))
	fmt.Println()
}

// runMeasured executes the plan reps times and reports the DMS bytes
// one execution moves plus the mean wall clock.
func runMeasured(db *pdwqo.DB, p *pdwqo.QueryPlan, reps int) (int64, time.Duration) {
	a := db.Appliance()
	var total time.Duration
	var bytes int64
	for i := 0; i < reps; i++ {
		before := a.Metrics.TotalBytesMoved()
		start := time.Now()
		if _, err := db.ExecutePlan(p); err != nil {
			fatal(err)
		}
		total += time.Since(start)
		bytes = a.Metrics.TotalBytesMoved() - before
	}
	return bytes, total / time.Duration(reps)
}

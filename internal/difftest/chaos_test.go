package difftest

import (
	"fmt"
	"testing"
)

// TestTPCHChaos sweeps the TPC-H corpus under seeded random fault plans
// on every topology: retried queries must reproduce the fault-free
// serial reference byte-for-byte, exhausted-retry queries must fail with
// a typed StepError, and no run may panic or leak temp tables. Every
// third case runs with retries disabled so the exhausted path is
// exercised on every topology.
func TestTPCHChaos(t *testing.T) {
	topologies := []int{1, 2, 4, 8}
	if testing.Short() {
		topologies = []int{4}
	}
	if raceEnabled {
		topologies = []int{8}
	}
	for _, nodes := range topologies {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes-%d", nodes), func(t *testing.T) {
			db := openAppliance(t, nodes)
			for i, c := range TPCHCases() {
				i, c := i, c
				t.Run(c.Name, func(t *testing.T) {
					seed := int64(nodes*1000 + i)
					retries := 3
					if i%3 == 2 {
						retries = 0
					}
					if err := Chaos(db, c, 8, seed, retries); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestFuzzChaos runs a slice of the random corpus through the chaos
// contract on the 4-node appliance — the fuzz shapes reach plans (IN
// lists, DISTINCT heads) the TPC-H suite doesn't.
func TestFuzzChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz chaos skipped in -short mode")
	}
	db := openAppliance(t, 4)
	for i, c := range FuzzCases(12, 20260806) {
		i, c := i, c
		t.Run(c.Name, func(t *testing.T) {
			if err := Chaos(db, c, 8, int64(9000+i), 2); err != nil {
				t.Error(err)
			}
		})
	}
}

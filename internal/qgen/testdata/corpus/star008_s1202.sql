SELECT COUNT(*) AS cnt
FROM st00, st01, st02, st03, st04, st05, st06, st07
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND k0 = f6
  AND k0 = f7
  AND v1 <= 578
  AND v6 <= 240

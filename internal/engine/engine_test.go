package engine

import (
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/memo"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
)

func buildAppliance(t *testing.T, nodes int) (*Appliance, tpch.Data) {
	t.Helper()
	shell, data, err := tpch.BuildShell(0.001, nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	a := New(shell)
	for _, tbl := range tpch.Tables() {
		if err := a.LoadTable(tbl.Name, data[tbl.Name]); err != nil {
			t.Fatal(err)
		}
	}
	return a, data
}

func planFor(t *testing.T, a *Appliance, sql string) *dsql.Plan {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(a.Shell)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Optimize(a.Shell, norm, memo.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	xmlData, err := memoxml.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := memoxml.Decode(xmlData, a.Shell)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(a.Shell.Topology.ComputeNodes, cost.DefaultLambda())
	p, err := core.New(dec, a.Shell, model, core.Config{}).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dsql.Generate(p, norm.OutputCols())
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func TestLoadTablePlacement(t *testing.T) {
	a, data := buildAppliance(t, 4)
	// Hash table: rows partition exactly.
	total := 0
	for _, n := range a.Compute {
		rows, err := n.DB.Scan("orders")
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != len(data["orders"]) {
		t.Errorf("orders partitioned: %d of %d", total, len(data["orders"]))
	}
	// Replicated table: full copy everywhere.
	for _, n := range a.Compute {
		rows, err := n.DB.Scan("nation")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(data["nation"]) {
			t.Errorf("nation replica on node %d: %d rows", n.ID, len(rows))
		}
	}
	if err := a.LoadTable("bogus", nil); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestExecuteShuffleJoin(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT * FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`)
	res, err := a.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("expected rows")
	}
	// Metrics: one move step recorded.
	found := false
	for _, s := range a.Metrics.Snapshot() {
		if s.IsMove && s.Bytes > 0 {
			found = true
		}
	}
	if !found {
		t.Error("move metrics missing")
	}
}

func TestTempTablesCleanedUp(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT * FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`)
	if _, err := a.Execute(p); err != nil {
		t.Fatal(err)
	}
	for _, n := range append(a.Compute, a.Control) {
		for _, name := range n.DB.Names() {
			if len(name) > 4 && name[:4] == "TEMP" {
				t.Errorf("temp table %q survived on node %d", name, n.ID)
			}
		}
	}
	// Re-running the same plan works (no name collisions).
	if _, err := a.Execute(p); err != nil {
		t.Fatalf("re-execute: %v", err)
	}
}

func TestExecuteOrderedTop(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT TOP 5 c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC`)
	res, err := a.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("top 5: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if types.Compare(res.Rows[i-1][1], res.Rows[i][1]) < 0 {
			t.Error("descending order violated")
		}
	}
}

func TestShuffleRedistribution(t *testing.T) {
	// After a shuffle on o_custkey, all rows for a given customer must be
	// on the node owning that hash — verified indirectly by a grouped
	// count matching a direct computation.
	a, data := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT o_custkey, COUNT(*) AS cnt, SUM(o_totalprice) AS s,
		MIN(o_orderdate) AS d FROM orders GROUP BY o_custkey`)
	res, err := a.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{}
	for _, r := range data["orders"] {
		want[r[1].Int()]++
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups: %d vs %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if r[1].Int() != want[r[0].Int()] {
			t.Fatalf("count for custkey %d: %d vs %d", r[0].Int(), r[1].Int(), want[r[0].Int()])
		}
	}
}

func TestBroadcastExecution(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT l_quantity FROM part, lineitem
		WHERE p_partkey = l_partkey AND p_name LIKE 'forest%'`)
	hasBroadcast := false
	for _, s := range p.Steps {
		if s.Kind == dsql.StepMove && s.MoveKind == cost.Broadcast {
			hasBroadcast = true
		}
	}
	if !hasBroadcast {
		t.Skip("plan did not broadcast; nothing to exercise")
	}
	if _, err := a.Execute(p); err != nil {
		t.Fatal(err)
	}
}

func TestScalarAggregateOnControl(t *testing.T) {
	a, data := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT SUM(l_quantity) AS s, COUNT(*) AS c FROM lineitem`)
	res, err := a.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("scalar agg: %d rows", len(res.Rows))
	}
	if res.Rows[0][1].Int() != int64(len(data["lineitem"])) {
		t.Errorf("count: %v vs %d", res.Rows[0][1], len(data["lineitem"]))
	}
}

func TestExecuteBadPlan(t *testing.T) {
	a, _ := buildAppliance(t, 2)
	bad := &dsql.Plan{Steps: []dsql.Step{{
		ID: 0, Kind: dsql.StepReturn, SQL: "SELECT nope FROM nothing", Where: core.DistHash,
	}}}
	if _, err := a.Execute(bad); err == nil {
		t.Error("bad SQL must error")
	}
	empty := &dsql.Plan{}
	if _, err := a.Execute(empty); err == nil {
		t.Error("plan without return step must error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	p := planFor(t, a, `SELECT o_custkey, COUNT(*) AS c FROM orders GROUP BY o_custkey`)
	r1, err := a.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Error("row counts differ across runs")
	}
}

// handStep builds a move step for direct engine testing. Move steps are
// idempotent, matching what dsql.Generate emits.
func handStep(id int, kind cost.MoveKind, where core.DistKind, sql, dest, hashCol string, cols []catalog.Column) dsql.Step {
	return dsql.Step{
		ID: id, Kind: dsql.StepMove, MoveKind: kind, Where: where, Idempotent: true,
		SQL: sql, Dest: dest, HashCol: hashCol, DestCols: cols,
	}
}

// TestAllSevenMoveKinds drives each §3.3.2 DMS operation through the
// engine with hand-built DSQL plans and checks placement semantics.
func TestAllSevenMoveKinds(t *testing.T) {
	a, data := buildAppliance(t, 4)
	nNation := len(data["nation"])
	nOrders := len(data["orders"])
	keyCols := []catalog.Column{{Name: "c1", Type: types.KindInt}}

	countOn := func(nodes []*Node, table string) (total int, per []int) {
		for _, n := range nodes {
			rows, err := n.DB.Scan(table)
			if err != nil {
				t.Fatalf("scan %s on node %d: %v", table, n.ID, err)
			}
			per = append(per, len(rows))
			total += len(rows)
		}
		return total, per
	}
	returnStep := func(id int, from string) dsql.Step {
		return dsql.Step{
			ID: id, Kind: dsql.StepReturn, Where: core.DistSingle,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[" + from + "]) AS T",
		}
	}
	_ = returnStep

	// 1. Shuffle: orders spread by o_custkey; every row lands exactly once.
	plan := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.Shuffle, core.DistHash,
			"SELECT T1.[o_custkey] AS c1 FROM [dbo].[orders] AS T1", "T_SH", "c1", keyCols),
		{ID: 1, Kind: dsql.StepReturn, Where: core.DistHash,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_SH]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	res, err := a.Execute(plan)
	if err != nil {
		t.Fatalf("shuffle: %v", err)
	}
	if len(res.Rows) != nOrders {
		t.Errorf("shuffle lost rows: %d vs %d", len(res.Rows), nOrders)
	}

	// 2. Broadcast: every node receives the full nation key set.
	planB := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.Broadcast, core.DistReplicated,
			"SELECT T1.[n_nationkey] AS c1 FROM [dbo].[nation] AS T1", "T_BC", "", keyCols),
		{ID: 1, Kind: dsql.StepReturn, Where: core.DistReplicated,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_BC]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	if _, err := a.Execute(planB); err != nil {
		t.Fatalf("broadcast: %v", err)
	}

	// 3. Trim: the replicated nation table redistributes in place; the
	// copies across nodes must partition exactly (each row kept once).
	planT := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.Trim, core.DistReplicated,
			"SELECT T1.[n_nationkey] AS c1 FROM [dbo].[nation] AS T1", "T_TR", "c1", keyCols),
		{ID: 1, Kind: dsql.StepReturn, Where: core.DistHash,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_TR]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	resT, err := a.Execute(planT)
	if err != nil {
		t.Fatalf("trim: %v", err)
	}
	if len(resT.Rows) != nNation {
		t.Errorf("trim must keep each row exactly once: %d vs %d", len(resT.Rows), nNation)
	}

	// 4/5. PartitionMove then ControlNodeMove: gather nation keys onto the
	// control node, then replicate them back out to every compute node.
	planPC := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.PartitionMove, core.DistReplicated,
			"SELECT T1.[n_nationkey] AS c1 FROM [dbo].[nation] AS T1", "T_PM", "", keyCols),
		handStep(1, cost.ControlNodeMove, core.DistSingle,
			"SELECT T1.c1 AS c1 FROM [tempdb].[T_PM] AS T1", "T_CN", "", keyCols),
		{ID: 2, Kind: dsql.StepReturn, Where: core.DistReplicated,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_CN]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	resPC, err := a.Execute(planPC)
	if err != nil {
		t.Fatalf("partition+controlmove: %v", err)
	}
	if len(resPC.Rows) != nNation {
		t.Errorf("control-node round trip: %d vs %d", len(resPC.Rows), nNation)
	}

	// 6. ReplicatedBroadcast: read one replica, replicate to all nodes.
	planRB := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.ReplicatedBroadcast, core.DistReplicated,
			"SELECT T1.[n_nationkey] AS c1 FROM [dbo].[nation] AS T1", "T_RB", "", keyCols),
		{ID: 1, Kind: dsql.StepReturn, Where: core.DistReplicated,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_RB]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	resRB, err := a.Execute(planRB)
	if err != nil {
		t.Fatalf("replicated broadcast: %v", err)
	}
	if len(resRB.Rows) != nNation {
		t.Errorf("replicated broadcast: %d vs %d", len(resRB.Rows), nNation)
	}

	// 7. RemoteCopySingle: one replica copied to the control node.
	planRC := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.RemoteCopySingle, core.DistReplicated,
			"SELECT T1.[n_nationkey] AS c1 FROM [dbo].[nation] AS T1", "T_RC", "", keyCols),
		{ID: 1, Kind: dsql.StepReturn, Where: core.DistSingle,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_RC]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	resRC, err := a.Execute(planRC)
	if err != nil {
		t.Fatalf("remote copy: %v", err)
	}
	if len(resRC.Rows) != nNation {
		t.Errorf("remote copy: %d vs %d", len(resRC.Rows), nNation)
	}
	_ = countOn
}

package pdwqo

// Regression lock for the engine-wide NULL-ordering contract: every sort
// in the system — node-local ORDER BY, TOP-N, and the control node's
// final merge — runs the one shared comparator in internal/exec, so NULL
// keys place FIRST on ascending keys and LAST on descending keys,
// identically on every topology. Before the comparator was shared, the
// ORDER BY, TOP-N and merge paths each carried their own copy of this
// logic, and a divergence would only surface as node-count-dependent row
// order.

import (
	"strings"
	"testing"
)

func TestNullOrderingAcrossTopologies(t *testing.T) {
	// CASE with no ELSE yields NULL for non-positive balances, so the
	// ORDER BY key mixes NULL and FLOAT; c_custkey breaks ties to make
	// the total order unique (and therefore byte-identical across N).
	cases := []struct {
		name string
		sql  string
		desc bool
	}{
		{"asc-nulls-first",
			`SELECT c_custkey, CASE WHEN c_acctbal > 0 THEN c_acctbal END AS k FROM customer ORDER BY k, c_custkey`, false},
		{"desc-nulls-last",
			`SELECT c_custkey, CASE WHEN c_acctbal > 0 THEN c_acctbal END AS k FROM customer ORDER BY k DESC, c_custkey`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []string
			var refN int
			for _, n := range []int{1, 2, 4, 8} {
				db, err := OpenTPCH(0.001, n, 42)
				if err != nil {
					t.Fatal(err)
				}
				res, err := db.Execute(tc.sql, Options{})
				if err != nil {
					t.Fatalf("N=%d: %v", n, err)
				}
				if len(res.Rows) == 0 {
					t.Fatalf("N=%d: empty result", n)
				}
				// NULL keys must form a contiguous prefix (asc) or suffix
				// (desc); any interleaving is a comparator divergence.
				boundary := -1
				for i, row := range res.Rows {
					isNull := row[1].IsNull()
					if tc.desc {
						isNull = !isNull
					}
					if isNull && boundary >= 0 {
						t.Fatalf("N=%d: NULL key at row %d after non-NULL at row %d (desc=%v)",
							n, i, boundary, tc.desc)
					}
					if !isNull && boundary < 0 {
						boundary = i
					}
				}
				rows := make([]string, len(res.Rows))
				for i, row := range res.Rows {
					parts := make([]string, len(row))
					for j, v := range row {
						parts[j] = v.String()
					}
					rows[i] = strings.Join(parts, "|")
				}
				if ref == nil {
					ref, refN = rows, n
					// The single-node reference executor must agree with
					// the distributed result row for row.
					serial, err := db.ExecuteSerial(tc.sql)
					if err != nil {
						t.Fatal(err)
					}
					if len(serial.Rows) != len(rows) {
						t.Fatalf("serial reference row count %d vs %d", len(serial.Rows), len(rows))
					}
					for i, row := range serial.Rows {
						parts := make([]string, len(row))
						for j, v := range row {
							parts[j] = v.String()
						}
						if got := strings.Join(parts, "|"); got != rows[i] {
							t.Fatalf("serial reference row %d: %s vs %s", i, got, rows[i])
						}
					}
					continue
				}
				if len(rows) != len(ref) {
					t.Fatalf("N=%d: row count %d, N=%d: %d", n, len(rows), refN, len(ref))
				}
				for i := range rows {
					if rows[i] != ref[i] {
						t.Fatalf("N=%d row %d = %s, N=%d = %s", n, i, rows[i], refN, ref[i])
					}
				}
			}
		})
	}
}

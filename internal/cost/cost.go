// Package cost implements the PDW cost model (paper §3.3): response-time
// costing of DMS (data movement) operations only. Each DMS operator is a
// source (reader + network) and a target (writer + SQL bulk copy); each
// component costs λ per byte processed, and asynchronous components
// compose by max:
//
//	C_source = max(C_reader, C_network)
//	C_target = max(C_writer, C_SQLBlkCpy)
//	C_DMS    = max(C_source, C_target)
//
// Under the uniformity and homogeneity assumptions, per-component bytes B
// are (Y·w)/N for distributed streams and Y·w for replicated streams.
package cost

import (
	"fmt"
	"math"
)

// MoveKind enumerates the seven physical data movement operations of
// §3.3.2.
type MoveKind uint8

// The seven DMS operations.
const (
	// Shuffle re-partitions rows across compute nodes by a hash column
	// (many-to-many).
	Shuffle MoveKind = iota
	// PartitionMove gathers rows from every compute node onto one node,
	// typically the control node (many-to-one).
	PartitionMove
	// ControlNodeMove replicates a control-node table to all compute
	// nodes (one-to-many).
	ControlNodeMove
	// Broadcast replicates rows from every compute node to all compute
	// nodes (many-to-all).
	Broadcast
	// Trim re-distributes a replicated table in place: each node hashes
	// and keeps only the rows it is responsible for. No network transfer.
	Trim
	// ReplicatedBroadcast replicates a table present on a single compute
	// node to all compute nodes.
	ReplicatedBroadcast
	// RemoteCopySingle copies a table to a single node.
	RemoteCopySingle
)

// String names the move the way plan output does.
func (k MoveKind) String() string {
	switch k {
	case Shuffle:
		return "SHUFFLE"
	case PartitionMove:
		return "PARTITION-MOVE"
	case ControlNodeMove:
		return "CONTROL-NODE-MOVE"
	case Broadcast:
		return "BROADCAST"
	case Trim:
		return "TRIM"
	case ReplicatedBroadcast:
		return "REPLICATED-BROADCAST"
	case RemoteCopySingle:
		return "REMOTE-COPY"
	default:
		return fmt.Sprintf("MOVE(%d)", uint8(k))
	}
}

// Hashes reports whether the move's reader hashes each tuple to route it,
// which costs λ_hash instead of λ_direct (§3.3.3).
func (k MoveKind) Hashes() bool { return k == Shuffle || k == Trim }

// Lambda holds the calibrated cost-per-byte constants, one per DMS
// component (§3.3.3 "cost calibration"). The reader has two constants to
// account for hashing overhead on Shuffle/Trim.
type Lambda struct {
	ReaderDirect float64
	ReaderHash   float64
	Network      float64
	Writer       float64
	BulkCopy     float64
}

// DefaultLambda is a reasonable pre-calibration default: bulk copy into
// the temp table is the most expensive component, hashing readers beat
// direct reads, network sits in between. `pdwbench calibrate` fits these
// against the simulator.
func DefaultLambda() Lambda {
	return Lambda{
		ReaderDirect: 1.0,
		ReaderHash:   1.35,
		Network:      1.2,
		Writer:       0.9,
		BulkCopy:     2.1,
	}
}

// Model is the PDW cost model for a concrete appliance topology.
type Model struct {
	Lambda Lambda
	Nodes  int // number of compute nodes (N)
}

// NewModel builds a model over n compute nodes.
func NewModel(n int, l Lambda) Model { return Model{Lambda: l, Nodes: n} }

// componentBytes returns the bytes processed by each component for a move
// of Y rows of width w: reader, network, writer, bulk copy.
func (m Model) componentBytes(kind MoveKind, rows, width float64) (r, n, w, b float64) {
	Y := rows * width
	N := float64(m.Nodes)
	if N < 1 {
		N = 1
	}
	dist := Y / N // per-node share of a distributed stream
	switch kind {
	case Shuffle:
		// Distributed in, distributed out.
		return dist, dist, dist, dist
	case PartitionMove:
		// Distributed sources; a single receiving node takes the whole
		// stream.
		return dist, dist, Y, Y
	case ControlNodeMove:
		// One sending node streams the full table; every compute node
		// writes a full copy (replicated stream).
		return Y, Y, Y, Y
	case Broadcast:
		// Distributed read; every node ships its share to all peers and
		// writes the full table (replicated stream on the target side).
		return dist, Y * (N - 1) / N, Y, Y
	case Trim:
		// Local hash-and-keep: full replicated table read on each node,
		// no network, distributed write.
		return Y, 0, dist, dist
	case ReplicatedBroadcast:
		// Single source node; replicated target stream.
		return Y, Y, Y, Y
	case RemoteCopySingle:
		return Y, Y, Y, Y
	}
	return Y, Y, Y, Y
}

// MoveCost returns the response-time cost of a DMS operation moving Y=rows
// tuples of width w bytes, per the max-composition model.
func (m Model) MoveCost(kind MoveKind, rows, width float64) float64 {
	if rows <= 0 || width <= 0 {
		return 0
	}
	rb, nb, wb, bb := m.componentBytes(kind, rows, width)
	reader := m.Lambda.ReaderDirect
	if kind.Hashes() {
		reader = m.Lambda.ReaderHash
	}
	cSource := maxf(rb*reader, nb*m.Lambda.Network)
	cTarget := maxf(wb*m.Lambda.Writer, bb*m.Lambda.BulkCopy)
	return maxf(cSource, cTarget)
}

// Components returns the per-component costs for diagnostics (E5).
func (m Model) Components(kind MoveKind, rows, width float64) (reader, network, writer, bulk float64) {
	rb, nb, wb, bb := m.componentBytes(kind, rows, width)
	rl := m.Lambda.ReaderDirect
	if kind.Hashes() {
		rl = m.Lambda.ReaderHash
	}
	return rb * rl, nb * m.Lambda.Network, wb * m.Lambda.Writer, bb * m.Lambda.BulkCopy
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// QError is the q-error of a cardinality or byte estimate: the symmetric
// relative factor max(pred/act, act/pred). It is ≥ 1, with 1 meaning a
// perfect estimate; when exactly one side is zero the error is unbounded
// (+Inf), and when both are zero the estimate was perfect (1). EXPLAIN
// ANALYZE reports it per move step (see EXPERIMENTS.md E16).
func QError(pred, act float64) float64 {
	if pred < 0 || act < 0 {
		return math.Inf(1)
	}
	if pred == 0 && act == 0 {
		return 1
	}
	if pred == 0 || act == 0 {
		return math.Inf(1)
	}
	return maxf(pred/act, act/pred)
}

// QErrorSummary aggregates per-step q-errors into the geometric mean of
// the finite factors plus the count of unbounded ones. A naive geometric
// mean over factors that include +Inf — one side of an estimate was zero,
// e.g. a predicted-empty move (EstBytes=0) that produced rows, or an
// empty actual result — is itself +Inf and hides every finite factor, so
// the unbounded ones are counted separately. NaN inputs (malformed
// estimates) also count as unbounded. With no finite factor the mean is
// +Inf when anything was unbounded, and 1 for empty input.
// PlanCostRatio compares two modeled plan costs as a ratio, smoothed by
// one cost unit on each side so that zero-cost plans (fully collocated —
// no DMS at all) stay finite and a zero/zero pair reads as a perfect 1.
// The large-join harness uses it for greedy-vs-exhaustive frontiers:
// ratio ≥ 1 means the greedy plan is that factor more expensive.
func PlanCostRatio(got, baseline float64) float64 {
	return (got + 1) / (baseline + 1)
}

// RatioSummary reduces a set of plan-cost ratios to the geometric mean
// and the worst case — the two numbers the E22 frontier and the
// difftest plan-quality gate report. Empty input summarizes as 1/1.
func RatioSummary(xs []float64) (geo, worst float64) {
	if len(xs) == 0 {
		return 1, 1
	}
	sum := 0.0
	worst = xs[0]
	for _, x := range xs {
		sum += math.Log(x)
		if x > worst {
			worst = x
		}
	}
	return math.Exp(sum / float64(len(xs))), worst
}

func QErrorSummary(xs []float64) (geo float64, unbounded int) {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsInf(x, 1) || math.IsNaN(x) {
			unbounded++
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		if unbounded > 0 {
			return math.Inf(1), unbounded
		}
		return 1, 0
	}
	return math.Exp(sum / float64(n)), unbounded
}

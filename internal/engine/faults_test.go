package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/types"
)

// nationMovePlan builds a hand DSQL plan that drives one move kind over
// the nation keys (ControlNodeMove needs a PartitionMove feeder so its
// source table exists on the control node). It returns the plan and the
// ID of the step carrying the move under test.
func nationMovePlan(kind cost.MoveKind, dest string) (*dsql.Plan, int) {
	keyCols := []catalog.Column{{Name: "c1", Type: types.KindInt}}
	out := []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}
	nationSQL := "SELECT T1.[n_nationkey] AS c1 FROM [dbo].[nation] AS T1"
	ret := func(id int, where core.DistKind) dsql.Step {
		return dsql.Step{ID: id, Kind: dsql.StepReturn, Where: where,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[" + dest + "]) AS T"}
	}
	if kind == cost.ControlNodeMove {
		return &dsql.Plan{Steps: []dsql.Step{
			handStep(0, cost.PartitionMove, core.DistReplicated, nationSQL, dest+"F", "", keyCols),
			handStep(1, cost.ControlNodeMove, core.DistSingle,
				"SELECT T1.c1 AS c1 FROM [tempdb].["+dest+"F] AS T1", dest, "", keyCols),
			ret(2, core.DistReplicated),
		}, OutCols: out}, 1
	}
	hashCol, retWhere := "", core.DistReplicated
	switch kind {
	case cost.Shuffle, cost.Trim:
		hashCol, retWhere = "c1", core.DistHash
	case cost.PartitionMove, cost.RemoteCopySingle:
		retWhere = core.DistSingle
	}
	return &dsql.Plan{Steps: []dsql.Step{
		handStep(0, kind, core.DistReplicated, nationSQL, dest, hashCol, keyCols),
		ret(1, retWhere),
	}, OutCols: out}, 0
}

// assertNoResidue fails if any node still holds the plan's destination
// tables, a staging table, or an engine temp after execution.
func assertNoResidue(t *testing.T, a *Appliance, destPrefix string) {
	t.Helper()
	for _, n := range append(a.Compute, a.Control) {
		for _, name := range n.DB.Names() {
			if strings.HasPrefix(name, destPrefix) ||
				strings.HasPrefix(name, "TEMP") || strings.Contains(name, "__stage") {
				t.Errorf("node %d: residual table %q", n.ID, name)
			}
		}
	}
}

// resetResilience restores the appliance's fault/retry knobs after a test.
func resetResilience(t *testing.T, a *Appliance) {
	t.Helper()
	t.Cleanup(func() {
		a.Faults = nil
		a.MaxRetries = 0
		a.StepTimeout = 0
		a.RetryBackoff = 0
		a.sleep = nil
	})
}

// TestFaultMatrix drives every DMS move kind through every fault kind,
// both with retries enabled (the fault must be absorbed and the result
// complete) and disabled (the failure must surface as the right typed
// StepError). Either way no temp, staging or destination table may leak.
func TestFaultMatrix(t *testing.T) {
	a, data := buildAppliance(t, 4)
	nNation := len(data["nation"])
	moveKinds := []cost.MoveKind{cost.Shuffle, cost.PartitionMove, cost.ControlNodeMove,
		cost.Broadcast, cost.Trim, cost.ReplicatedBroadcast, cost.RemoteCopySingle}
	sentinels := map[FaultKind]error{
		FaultFail:    ErrFaultInjected,
		FaultSlow:    ErrStepTimeout,
		FaultCorrupt: ErrCorruptDelivery,
	}
	wantKind := map[FaultKind]ErrorKind{
		FaultFail:    ErrKindInjected,
		FaultSlow:    ErrKindTimeout,
		FaultCorrupt: ErrKindCorrupt,
	}
	for _, mk := range moveKinds {
		for _, fk := range []FaultKind{FaultFail, FaultSlow, FaultCorrupt} {
			for _, retried := range []bool{true, false} {
				mk, fk, retried := mk, fk, retried
				t.Run(fmt.Sprintf("%s/%s/retried=%v", mk, fk, retried), func(t *testing.T) {
					dest := fmt.Sprintf("T_FX%d%d", int(mk), int(fk))
					plan, faultStep := nationMovePlan(mk, dest)
					f := Fault{Kind: fk, Op: OpDeliver, Step: faultStep, Node: Any, Move: int(mk), Times: 1}
					a.StepTimeout = 0
					if fk == FaultSlow {
						// A slow delivery only fails by exceeding the step
						// timeout, so give it one it cannot meet.
						f.Delay = 250 * time.Millisecond
						a.StepTimeout = 10 * time.Millisecond
					}
					a.Faults = NewFaultPlan(f)
					a.RetryBackoff = time.Microsecond
					a.MaxRetries = 0
					if retried {
						a.MaxRetries = 2
					}
					resetResilience(t, a)

					res, err := a.Execute(plan)
					if retried {
						if err != nil {
							t.Fatalf("retry should absorb the fault: %v", err)
						}
						if len(res.Rows) != nNation {
							t.Errorf("rows after retry: %d, want %d", len(res.Rows), nNation)
						}
					} else {
						if err == nil {
							t.Fatal("fault with retries disabled must fail")
						}
						var se *StepError
						if !errors.As(err, &se) {
							t.Fatalf("failure is not a *StepError: %v", err)
						}
						if se.Step != faultStep {
							t.Errorf("failed step %d, want %d", se.Step, faultStep)
						}
						if se.Kind != wantKind[fk] {
							t.Errorf("error kind %v, want %v", se.Kind, wantKind[fk])
						}
						if !errors.Is(err, sentinels[fk]) {
							t.Errorf("error %v does not match sentinel %v", err, sentinels[fk])
						}
						if !se.Retryable() {
							t.Errorf("%v faults must classify as retryable", fk)
						}
					}
					assertNoResidue(t, a, dest)
				})
			}
		}
	}
}

// TestBackoffDelay pins the capped exponential arithmetic — pure
// function, no clock involved.
func TestBackoffDelay(t *testing.T) {
	cases := []struct {
		base    time.Duration
		max     time.Duration
		attempt int
		want    time.Duration
	}{
		{0, maxRetryBackoff, 1, defaultBackoff},
		{0, maxRetryBackoff, 2, 2 * defaultBackoff},
		{time.Millisecond, maxRetryBackoff, 1, time.Millisecond},
		{time.Millisecond, maxRetryBackoff, 2, 2 * time.Millisecond},
		{time.Millisecond, maxRetryBackoff, 3, 4 * time.Millisecond},
		{time.Millisecond, maxRetryBackoff, 4, 8 * time.Millisecond},
		{time.Millisecond, maxRetryBackoff, 30, maxRetryBackoff},
		{100 * time.Millisecond, maxRetryBackoff, 3, maxRetryBackoff},
		{10 * time.Millisecond, 25 * time.Millisecond, 2, 20 * time.Millisecond},
		{10 * time.Millisecond, 25 * time.Millisecond, 3, 25 * time.Millisecond},
	}
	for _, c := range cases {
		if got := backoffDelay(c.base, c.max, c.attempt); got != c.want {
			t.Errorf("backoffDelay(%v, %v, %d) = %v, want %v",
				c.base, c.max, c.attempt, got, c.want)
		}
	}
}

// TestRetryBackoffFakeClock swaps in a fake clock and checks the retry
// loop requests exactly the doubling waits — no real time.Sleep in the
// assertion path.
func TestRetryBackoffFakeClock(t *testing.T) {
	a, data := buildAppliance(t, 2)
	plan, faultStep := nationMovePlan(cost.Broadcast, "T_FCK")
	var mu sync.Mutex
	var slept []time.Duration
	a.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return nil
	}
	// Pin the fault to node 0 so exactly one delivery fails per attempt:
	// two failed attempts, then success on the third.
	a.Faults = NewFaultPlan(Fault{
		Kind: FaultFail, Op: OpDeliver, Step: faultStep, Node: 0, Move: Any, Times: 2,
	})
	a.MaxRetries = 3
	a.RetryBackoff = 8 * time.Millisecond
	resetResilience(t, a)

	res, err := a.Execute(plan)
	if err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
	if len(res.Rows) != len(data["nation"]) {
		t.Errorf("rows: %d, want %d", len(res.Rows), len(data["nation"]))
	}
	mu.Lock()
	got := append([]time.Duration(nil), slept...)
	mu.Unlock()
	want := []time.Duration{8 * time.Millisecond, 16 * time.Millisecond}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("backoff waits %v, want %v", got, want)
	}
	if n := a.Metrics.RetryCount(); n != 2 {
		t.Errorf("retry count %d, want 2", n)
	}
	if n := a.Metrics.FaultCount(); n != 2 {
		t.Errorf("fault count %d, want 2", n)
	}
}

// TestReturnStepNeverRetries: the Return step streams rows to the
// client, so replaying it would duplicate output — a fault there must
// surface even with retries enabled.
func TestReturnStepNeverRetries(t *testing.T) {
	a, _ := buildAppliance(t, 2)
	plan, _ := nationMovePlan(cost.Broadcast, "T_NRT")
	retID := plan.Steps[len(plan.Steps)-1].ID
	a.Faults = NewFaultPlan(Fault{
		Kind: FaultFail, Op: OpQuery, Step: retID, Node: Any, Move: Any, Times: 1,
	})
	a.MaxRetries = 5
	a.RetryBackoff = time.Microsecond
	resetResilience(t, a)
	_, err := a.Execute(plan)
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("non-idempotent return step must not retry: err = %v", err)
	}
	if n := a.Metrics.RetryCount(); n != 0 {
		t.Errorf("retry count %d, want 0", n)
	}
	assertNoResidue(t, a, "T_NRT")
}

// TestExecErrorNotRetried: deterministic execution failures (bad SQL)
// must fail fast with ErrKindExec instead of burning retries.
func TestExecErrorNotRetried(t *testing.T) {
	a, _ := buildAppliance(t, 2)
	keyCols := []catalog.Column{{Name: "c1", Type: types.KindInt}}
	plan := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.Broadcast, core.DistReplicated,
			"SELECT T1.[no_such_col] AS c1 FROM [dbo].[nation] AS T1", "T_EXE", "", keyCols),
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	a.MaxRetries = 5
	a.RetryBackoff = time.Microsecond
	resetResilience(t, a)
	_, err := a.Execute(plan)
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("want *StepError, got %v", err)
	}
	if se.Kind != ErrKindExec {
		t.Errorf("kind %v, want %v", se.Kind, ErrKindExec)
	}
	if se.Retryable() {
		t.Error("exec errors must not be retryable")
	}
	if n := a.Metrics.RetryCount(); n != 0 {
		t.Errorf("retry count %d, want 0", n)
	}
	assertNoResidue(t, a, "T_EXE")
}

// TestMidShuffleFailureNoLeak injects a delivery failure into a shuffle
// of the orders table (large enough that other nodes' deliveries land
// first) and checks that neither the destination, its staging table nor
// any temp survives — then that a clean re-run works.
func TestMidShuffleFailureNoLeak(t *testing.T) {
	a, data := buildAppliance(t, 4)
	keyCols := []catalog.Column{{Name: "c1", Type: types.KindInt}}
	plan := &dsql.Plan{Steps: []dsql.Step{
		handStep(0, cost.Shuffle, core.DistHash,
			"SELECT T1.[o_custkey] AS c1 FROM [dbo].[orders] AS T1", "T_LEAK", "c1", keyCols),
		{ID: 1, Kind: dsql.StepReturn, Where: core.DistHash,
			SQL: "SELECT T.c1 AS [c1] FROM (SELECT c1 FROM [tempdb].[T_LEAK]) AS T"},
	}, OutCols: []algebra.ColumnMeta{{ID: 1, Name: "c1", Type: types.KindInt}}}
	a.Faults = NewFaultPlan(Fault{
		Kind: FaultFail, Op: OpDeliver, Step: 0, Node: 1, Move: Any, Times: 1,
	})
	resetResilience(t, a)

	if _, err := a.Execute(plan); err == nil {
		t.Fatal("injected mid-shuffle failure must surface without retries")
	}
	assertNoResidue(t, a, "T_LEAK")

	// The failed run must not have polluted catalog or storage: the same
	// plan runs clean once the fault budget is spent.
	res, err := a.Execute(plan)
	if err != nil {
		t.Fatalf("re-run after failed shuffle: %v", err)
	}
	if len(res.Rows) != len(data["orders"]) {
		t.Errorf("re-run rows: %d, want %d", len(res.Rows), len(data["orders"]))
	}
	assertNoResidue(t, a, "T_LEAK")
}

// TestStepErrorTaxonomy pins the errors.Is/As surface of StepError.
func TestStepErrorTaxonomy(t *testing.T) {
	cause := errors.New("boom")
	se := stepError(3, 2, ErrKindInjected, cause)
	se.Attempt = 1
	if !errors.Is(se, ErrFaultInjected) {
		t.Error("injected StepError must match ErrFaultInjected")
	}
	if errors.Is(se, ErrCorruptDelivery) || errors.Is(se, ErrStepTimeout) {
		t.Error("injected StepError must not match other sentinels")
	}
	if !errors.Is(se, cause) {
		t.Error("StepError must unwrap to its cause")
	}
	var got *StepError
	wrapped := fmt.Errorf("query failed: %w", se)
	if !errors.As(wrapped, &got) || got.Step != 3 || got.Node != 2 || got.Attempt != 1 {
		t.Errorf("errors.As through a wrap: got %+v", got)
	}
	if msg := se.Error(); !strings.Contains(msg, "step 3") || !strings.Contains(msg, "node 2") {
		t.Errorf("error text %q must carry step and node", msg)
	}
	anon := stepError(7, NoNode, ErrKindExec, cause)
	if msg := anon.Error(); strings.Contains(msg, "node") {
		t.Errorf("NoNode error text %q must omit the node", msg)
	}
	retryable := map[ErrorKind]bool{
		ErrKindExec: false, ErrKindInjected: true, ErrKindCorrupt: true,
		ErrKindTimeout: true, ErrKindCancelled: false,
	}
	for k, want := range retryable {
		if got := stepError(0, NoNode, k, cause).Retryable(); got != want {
			t.Errorf("Retryable(%v) = %v, want %v", k, got, want)
		}
	}
}

// TestFaultPlanMatch checks rule addressing, declaration-order priority
// and per-rule firing budgets.
func TestFaultPlanMatch(t *testing.T) {
	p := NewFaultPlan(
		Fault{Kind: FaultFail, Op: OpQuery, Step: 1, Node: 2, Move: Any, Times: 2},
		Fault{Kind: FaultSlow, Op: OpAny, Step: Any, Node: Any, Move: int(cost.Shuffle), Times: 1},
	)
	if _, ok := p.match(OpDeliver, 1, 2, Any); ok {
		t.Error("op filter must reject a deliver site for a query rule without a move match")
	}
	if _, ok := p.match(OpQuery, 0, 2, Any); ok {
		t.Error("step filter must reject step 0")
	}
	if f, ok := p.match(OpQuery, 1, 2, Any); !ok || f.Kind != FaultFail {
		t.Errorf("first rule should claim (query,1,2): %v %v", f, ok)
	}
	if _, ok := p.match(OpQuery, 1, 2, Any); !ok {
		t.Error("rule with times=2 must fire twice")
	}
	if _, ok := p.match(OpQuery, 1, 2, Any); ok {
		t.Error("rule must be spent after its budget")
	}
	if f, ok := p.match(OpDeliver, 5, 9, int(cost.Shuffle)); !ok || f.Kind != FaultSlow {
		t.Errorf("wildcard rule should claim shuffle site: %v %v", f, ok)
	}
	if got := p.Fired(); got != 3 {
		t.Errorf("fired %d, want 3", got)
	}
	p.Reset()
	if got := p.Fired(); got != 0 {
		t.Errorf("fired after reset %d, want 0", got)
	}
	if _, ok := p.match(OpQuery, 1, 2, Any); !ok {
		t.Error("reset must restore firing budgets")
	}
	var nilPlan *FaultPlan
	if _, ok := nilPlan.match(OpQuery, 0, 0, Any); ok {
		t.Error("nil plan must never match")
	}
	if nilPlan.Fired() != 0 {
		t.Error("nil plan Fired must be 0")
	}
	nilPlan.Reset() // must not panic
}

// TestRandomFaultPlanDeterministic: the seeded generator is the chaos
// difftest's reproducibility anchor — same seed, same schedule.
func TestRandomFaultPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r1 := RandomFaultPlan(seed, 4, 8).Rules()
		r2 := RandomFaultPlan(seed, 4, 8).Rules()
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("seed %d: rules differ:\n%v\n%v", seed, r1, r2)
		}
		if len(r1) < 1 || len(r1) > 3 {
			t.Fatalf("seed %d: %d rules, want 1..3", seed, len(r1))
		}
		for _, f := range r1 {
			if f.Kind == FaultSlow && f.Delay <= 0 {
				t.Errorf("seed %d: slow rule without delay: %v", seed, f)
			}
		}
	}
	// Degenerate ranges must not panic or produce out-of-range addresses.
	for _, f := range RandomFaultPlan(1, 0, 0).Rules() {
		if f.Step != Any && f.Step != 0 {
			t.Errorf("step %d out of clamped range", f.Step)
		}
	}
}

// TestParseFaultSpec covers the -fault flag grammar and its round trip
// through Fault.String.
func TestParseFaultSpec(t *testing.T) {
	p, err := ParseFaultSpec("fail:step=1,node=2,times=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Fault{Kind: FaultFail, Op: OpAny, Step: 1, Node: 2, Move: Any, Times: 3}
	if got := p.Rules(); len(got) != 1 || got[0] != want {
		t.Errorf("parsed %+v, want %+v", got, want)
	}
	if s := want.String(); s != "fail:step=1,node=2,times=3" {
		t.Errorf("String() = %q", s)
	}

	p, err = ParseFaultSpec("slow:op=deliver,move=shuffle,delay=5ms; corrupt:step=0")
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 2 {
		t.Fatalf("rules: %d, want 2", len(rules))
	}
	if r := rules[0]; r.Kind != FaultSlow || r.Op != OpDeliver ||
		r.Move != int(cost.Shuffle) || r.Delay != 5*time.Millisecond {
		t.Errorf("rule 0: %+v", r)
	}
	if r := rules[1]; r.Kind != FaultCorrupt || r.Step != 0 || r.Node != Any {
		t.Errorf("rule 1: %+v", r)
	}

	// A bare slow rule gets a default delay.
	p, err = ParseFaultSpec("slow")
	if err != nil {
		t.Fatal(err)
	}
	if r := p.Rules()[0]; r.Delay != time.Millisecond {
		t.Errorf("default slow delay: %v", r.Delay)
	}

	// Empty spec means no plan, not an error.
	if p, err := ParseFaultSpec("  "); p != nil || err != nil {
		t.Errorf("empty spec: %v %v", p, err)
	}

	// Seeded form draws the same schedule as RandomFaultPlan.
	p, err = ParseFaultSpec("seed=42:steps=2,nodes=4")
	if err != nil {
		t.Fatal(err)
	}
	if want := RandomFaultPlan(42, 2, 4).Rules(); !reflect.DeepEqual(p.Rules(), want) {
		t.Errorf("seed spec rules %v, want %v", p.Rules(), want)
	}

	for _, bad := range []string{
		"explode", "fail:bogus=1", "fail:step=x", "fail:op=warp",
		"fail:move=sideways", "slow:delay=soon", "seed=abc", "seed=1:depth=3",
		"fail:step", ";",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q must fail to parse", bad)
		}
	}

	// Round trip: every randomly drawn rule re-parses to itself (Times 1
	// renders implicitly, so normalize before comparing).
	norm := func(f Fault) Fault {
		if f.Times <= 0 {
			f.Times = 1
		}
		return f
	}
	for seed := int64(100); seed < 110; seed++ {
		for _, f := range RandomFaultPlan(seed, 4, 8).Rules() {
			rp, err := ParseFaultSpec(f.String())
			if err != nil {
				t.Fatalf("re-parse %q: %v", f.String(), err)
			}
			if got := rp.Rules()[0]; norm(got) != norm(f) {
				t.Errorf("round trip %q: got %+v, want %+v", f.String(), got, f)
			}
		}
	}
}

// TestMetricsCountersConcurrent hammers the metrics read API while an
// execution with retries and faults is mutating it — a race-detector
// regression test for the counter accessors.
func TestMetricsCountersConcurrent(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	plan, faultStep := nationMovePlan(cost.Broadcast, "T_MRC")
	a.Faults = NewFaultPlan(Fault{
		Kind: FaultFail, Op: OpDeliver, Step: faultStep, Node: 0, Move: Any, Times: 2,
	})
	a.MaxRetries = 3
	a.RetryBackoff = time.Microsecond
	resetResilience(t, a)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = a.Metrics.RetryCount()
					_ = a.Metrics.FaultCount()
					_ = a.Metrics.StepCount()
					_ = a.Metrics.TotalBytesMoved()
					_ = a.Metrics.Snapshot()
				}
			}
		}()
	}
	if _, err := a.Execute(plan); err != nil {
		t.Errorf("execute under concurrent metric reads: %v", err)
	}
	close(done)
	wg.Wait()
	if a.Metrics.RetryCount() < 1 {
		t.Error("expected at least one retry recorded")
	}
	if a.Metrics.FaultCount() < 1 {
		t.Error("expected at least one fault recorded")
	}
}

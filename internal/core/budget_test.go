package core

import (
	"errors"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/cost"
	"pdwqo/internal/memo"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/normalize"
	"pdwqo/internal/qgen"
	"pdwqo/internal/sqlparser"
)

var (
	budgetDec   *memoxml.Decoded
	budgetShell *catalog.Shell
)

// budgetFixture compiles one 64-relation clique down to a decoded memo,
// cached across the budget tests (the decoded memo is read-only during
// enumeration).
func budgetFixture(t *testing.T) (*memoxml.Decoded, *catalog.Shell) {
	t.Helper()
	if budgetDec != nil {
		return budgetDec, budgetShell
	}
	q, err := qgen.Generate(qgen.Spec{Topology: qgen.Clique, Relations: 64, Seed: 4242})
	if err != nil {
		t.Fatal(err)
	}
	s, err := q.Shell()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sqlparser.ParseSelect(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(s)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Optimize(s, norm, memo.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	data, err := memoxml.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := memoxml.Decode(data, s)
	if err != nil {
		t.Fatal(err)
	}
	budgetDec, budgetShell = dec, s
	return dec, s
}

// TestBudgetCounterExactUnderParallelWaves is the race-freedom contract
// of the enumeration budget: a 64-relation clique optimized at
// Parallelism=8 under -race must trip the budget at the same wave with
// the exact same counter value as the serial reference, on every run.
// The counter is approximate nowhere: options are counted atomically and
// the budget is read only at wave barriers, after the wave's workers
// have joined.
func TestBudgetCounterExactUnderParallelWaves(t *testing.T) {
	dec, shell := budgetFixture(t)
	model := cost.NewModel(8, cost.DefaultLambda())

	run := func(par, budget int) *BudgetError {
		t.Helper()
		opt := New(dec, shell, model, Config{SearchBudget: budget, Parallelism: par})
		_, err := opt.Optimize()
		if err == nil {
			t.Fatalf("par=%d budget=%d: expected budget exhaustion, search finished", par, budget)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("par=%d budget=%d: expected *BudgetError, got %v", par, budget, err)
		}
		return be
	}

	// Budget 1 trips at the first barrier: the counter is exactly the
	// scan wave's option count.
	ref := run(1, 1)
	if ref.Wave != 1 {
		t.Fatalf("budget=1 tripped at wave %d, want 1", ref.Wave)
	}
	if ref.Considered < 64 {
		t.Fatalf("wave 0 of a 64-relation clique considered %d options, want >= 64", ref.Considered)
	}

	// A budget just past wave 0 lets at least one join wave run before
	// tripping, so parallel workers contribute to the counter.
	deep := run(1, int(ref.Considered)+1)
	if deep.Wave < 2 {
		t.Fatalf("budget=%d tripped at wave %d, want >= 2", ref.Considered+1, deep.Wave)
	}

	for i := 0; i < 3; i++ {
		for _, want := range []*BudgetError{ref, deep} {
			got := run(8, want.Budget)
			if got.Considered != want.Considered || got.Wave != want.Wave || got.Waves != want.Waves {
				t.Fatalf("run %d budget=%d: parallel trip {considered=%d wave=%d/%d} != serial {considered=%d wave=%d/%d}",
					i, want.Budget, got.Considered, got.Wave, got.Waves, want.Considered, want.Wave, want.Waves)
			}
		}
	}
}

// TestBudgetDisabledFinishes: SearchBudget=0 keeps enumeration exhaustive
// and the serial-over-waves iteration produces the same plan and counters
// as before the budget existed.
func TestBudgetDisabledFinishes(t *testing.T) {
	dec, shell := budgetFixture(t)
	model := cost.NewModel(8, cost.DefaultLambda())
	serial, err := New(dec, shell, model, Config{Parallelism: 1}).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(dec, shell, model, Config{Parallelism: 8}).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if serial.OptionsConsidered != parallel.OptionsConsidered {
		t.Fatalf("options considered diverged: serial %d, parallel %d",
			serial.OptionsConsidered, parallel.OptionsConsidered)
	}
	if serial.TotalCost != parallel.TotalCost {
		t.Fatalf("plan cost diverged: serial %g, parallel %g", serial.TotalCost, parallel.TotalCost)
	}
	// A budget generously above the total never trips.
	over, err := New(dec, shell, model, Config{SearchBudget: serial.OptionsConsidered + 1, Parallelism: 8}).Optimize()
	if err != nil {
		t.Fatalf("budget above total tripped: %v", err)
	}
	if over.TotalCost != serial.TotalCost {
		t.Fatalf("plan cost under slack budget diverged: %g vs %g", over.TotalCost, serial.TotalCost)
	}
}

package transval

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

func TestSQLTypeName(t *testing.T) {
	cases := map[types.Kind]string{
		types.KindBool:   "BIT",
		types.KindInt:    "BIGINT",
		types.KindFloat:  "FLOAT",
		types.KindString: "VARCHAR",
		types.KindDate:   "DATE",
		types.KindNull:   "BIGINT",
	}
	for k, want := range cases {
		if got := sqlTypeName(k); got != want {
			t.Errorf("sqlTypeName(%v) = %s, want %s", k, got, want)
		}
	}
}

func TestDistKindName(t *testing.T) {
	cases := map[core.DistKind]string{
		core.DistHash:       "hash",
		core.DistReplicated: "replicated",
		core.DistSingle:     "single",
	}
	for k, want := range cases {
		if got := distKindName(k); got != want {
			t.Errorf("distKindName(%v) = %s, want %s", k, got, want)
		}
	}
}

func TestCanonBinary(t *testing.T) {
	// > and >= flip into < and <= with swapped operands; symmetric ops
	// sort their operand texts, so a = b and b = a canonicalize equal.
	if got := canonBinary(sqlparser.OpGt, "c1", "c2"); got != "(c2 < c1)" {
		t.Errorf("Gt canon = %s", got)
	}
	if got := canonBinary(sqlparser.OpGe, "c1", "c2"); got != "(c2 <= c1)" {
		t.Errorf("Ge canon = %s", got)
	}
	if canonBinary(sqlparser.OpEq, "b", "a") != canonBinary(sqlparser.OpEq, "a", "b") {
		t.Error("Eq not operand-order independent")
	}
}

func TestMergeOrigins(t *testing.T) {
	a := map[string]struct{}{"t.a": {}}
	b := map[string]struct{}{"t.b": {}, "t.a": {}}
	got := mergeOrigins(a, b, nil)
	if len(got) != 2 {
		t.Fatalf("merged = %v", got)
	}
}

// col builds column metadata for scalar-helper tests.
func col(id algebra.ColumnID, k types.Kind) *algebra.ColRef {
	return algebra.NewColRef(algebra.ColumnMeta{ID: id, Type: k})
}

func lookupOf(cols ...absCol) colLookup {
	return func(id algebra.ColumnID) *absCol {
		for i := range cols {
			if cols[i].ID == id {
				return &cols[i]
			}
		}
		return nil
	}
}

func TestScalarHelpersPlanSide(t *testing.T) {
	look := lookupOf(
		absCol{ID: 1, Type: types.KindInt, Nullable: true, Origins: map[string]struct{}{"t.a": {}}},
		absCol{ID: 2, Type: types.KindFloat, Origins: map[string]struct{}{"t.b": {}}},
		absCol{ID: 3, Type: types.KindString, Origins: map[string]struct{}{"t.c": {}}},
	)
	c1, c2, c3 := col(1, types.KindInt), col(2, types.KindFloat), col(3, types.KindString)

	caseExpr := &algebra.Case{
		Whens: []algebra.CaseWhen{{Cond: &algebra.IsNull{E: c1}, Then: c2}},
		Else:  &algebra.Const{Val: types.NewFloat(0)},
	}
	if typeOfScalar(caseExpr, look) != types.KindFloat {
		t.Error("case type")
	}
	if nullableScalar(caseExpr, look) {
		t.Error("case with else over non-null arms should be non-nullable")
	}
	noElse := &algebra.Case{Whens: []algebra.CaseWhen{{Cond: &algebra.IsNull{E: c1}, Then: c2}}}
	if !nullableScalar(noElse, look) {
		t.Error("case without else must be nullable")
	}

	sub := &algebra.Func{Name: "SUBSTRING", Args: []algebra.Scalar{c3,
		&algebra.Const{Val: types.NewInt(1)}, &algebra.Const{Val: types.NewInt(2)}}, Out: types.KindString}
	if typeOfScalar(sub, look) != types.KindString {
		t.Error("substring type")
	}
	yr := &algebra.Func{Name: "YEAR", Args: []algebra.Scalar{c1}, Out: types.KindInt}
	if typeOfScalar(yr, look) != types.KindInt {
		t.Error("year type")
	}
	if !nullableScalar(yr, look) {
		t.Error("year over nullable arg must be nullable")
	}

	like := &algebra.Like{E: c3, Pattern: "%x%"}
	if typeOfScalar(like, look) != types.KindBool {
		t.Error("like type")
	}
	if got := canonScalar(like); !strings.Contains(got, "LIKE") {
		t.Errorf("like canon = %s", got)
	}

	neg := &algebra.Neg{E: &algebra.Const{Val: types.NewInt(7)}}
	if got := canonScalar(neg); got != "-7" {
		t.Errorf("folded neg canon = %s", got)
	}
	negf := &algebra.Neg{E: &algebra.Const{Val: types.NewFloat(1.5)}}
	if got := canonScalar(negf); got != "-1.5" {
		t.Errorf("folded float neg canon = %s", got)
	}

	cast := &algebra.Cast{E: c1, To: types.KindFloat}
	if got := canonScalar(cast); !strings.Contains(got, "AS FLOAT") {
		t.Errorf("cast canon = %s", got)
	}

	param := &algebra.Const{Val: types.NewInt(9), Param: 3}
	if got := canonScalar(param); got != "?2" {
		t.Errorf("param canon = %s", got)
	}
	if !scalarValueBearing(param) {
		t.Error("param const must be value-bearing")
	}
	if scalarValueBearing(&algebra.Const{Val: types.NewInt(9)}) {
		t.Error("plain const alone is not value-bearing")
	}

	inl := &algebra.InList{E: c1, List: []algebra.Scalar{
		&algebra.Const{Val: types.NewInt(1)}, &algebra.Const{Val: types.NewInt(2)}}}
	if ks := killSet(inl); !ks.Has(1) {
		t.Error("IN-list must kill its subject")
	}
	notNull := &algebra.IsNull{E: c1, Negated: true}
	if ks := killSet(notNull); !ks.Has(1) {
		t.Error("IS NOT NULL must kill its subject")
	}
	if ks := killSet(&algebra.IsNull{E: c1}); ks.Has(1) {
		t.Error("IS NULL must not kill")
	}
	if nd := nullDeps(caseExpr); len(nd) != 0 {
		t.Error("case has no simple null deps")
	}
}

// sqlInterpFor builds an interpreter over the TPC-H shell with the fuzz
// temp registered, mirroring a mid-plan boundary.
func sqlInterpFor() *sqlInterp {
	return &sqlInterp{
		shell:     fuzzShell(),
		temps:     map[string]*absRel{"TEMP_ID_1": fuzzTemp()},
		slotKinds: map[int]types.Kind{0: types.KindInt},
		acc:       newFragAcc(),
	}
}

func mustSelect(t *testing.T, sql string) *sqlparser.SelectStmt {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestSelectRelUnion(t *testing.T) {
	si := sqlInterpFor()
	rel, err := si.selectRel(mustSelect(t,
		"SELECT c1, c2 FROM [tempdb].[TEMP_ID_1] UNION ALL SELECT c1, c2 FROM [tempdb].[TEMP_ID_1]"),
		nil, false, false)
	if err != nil {
		t.Fatalf("clean union: %v", err)
	}
	if len(rel.cols) != 2 || rel.cols[0].ID != 1 {
		t.Fatalf("union cols = %+v", rel.cols)
	}
	if rel.dist.Kind != core.DistHash {
		t.Errorf("hash+hash union dist = %v", rel.dist)
	}

	if _, err := si.selectRel(mustSelect(t,
		"SELECT c1, c2 FROM [tempdb].[TEMP_ID_1] UNION ALL SELECT c1 FROM [tempdb].[TEMP_ID_1]"),
		nil, false, false); err == nil {
		t.Error("arity mismatch union must fail")
	}
	if _, err := si.selectRel(mustSelect(t,
		"SELECT c1 FROM [tempdb].[TEMP_ID_1] UNION ALL SELECT c2 FROM [tempdb].[TEMP_ID_1]"),
		nil, false, false); err == nil {
		t.Error("positional ID mismatch union must fail")
	}
}

func TestBranchRelRejects(t *testing.T) {
	si := sqlInterpFor()
	for _, sql := range []string{
		"SELECT DISTINCT c1 FROM [tempdb].[TEMP_ID_1]",
		"SELECT c1 FROM [tempdb].[TEMP_ID_1] GROUP BY c1 HAVING COUNT(*) > 1",
		"SELECT * FROM [tempdb].[TEMP_ID_1]",
		"SELECT AVG(c1) AS c9 FROM [tempdb].[TEMP_ID_1]",
	} {
		if _, err := si.selectRel(mustSelect(t, sql), nil, false, false); err == nil {
			t.Errorf("%q: expected bind error", sql)
		}
	}
}

func TestBindJoinRejects(t *testing.T) {
	si := sqlInterpFor()
	// The generator never joins base tables directly; both sides must be
	// derived tables or temps.
	if _, err := si.selectRel(mustSelect(t,
		"SELECT T1.[c_custkey] AS c1 FROM [dbo].[customer] AS T1 INNER JOIN (SELECT c2 FROM [tempdb].[TEMP_ID_1]) AS T6 ON (T1.[c_custkey] = T6.c2)"),
		nil, false, false); err == nil {
		t.Error("base-table join side must fail")
	}
	if _, err := si.selectRel(mustSelect(t,
		"SELECT T5.c1 AS c1 FROM (SELECT c1 FROM [tempdb].[TEMP_ID_1]) AS T5 RIGHT JOIN (SELECT c2 FROM [tempdb].[TEMP_ID_1]) AS T6 ON (T5.c1 = T6.c2)"),
		nil, false, false); err == nil {
		t.Error("RIGHT JOIN must fail")
	}
}

func TestReturnRelRejects(t *testing.T) {
	for _, sql := range []string{
		"SELECT c1 FROM [tempdb].[TEMP_ID_1]",                                                    // not a derived table
		"SELECT (T9.c1 + 1) AS [x] FROM (SELECT c1 FROM [tempdb].[TEMP_ID_1]) AS T9",             // non-colref item
		"SELECT T9.c1 AS [x] FROM (SELECT c1 FROM [tempdb].[TEMP_ID_1]) AS T9 WHERE (T9.c1 = 1)", // WHERE on wrapper
	} {
		si := sqlInterpFor()
		if _, _, err := si.returnRel(mustSelect(t, sql)); err == nil {
			t.Errorf("%q: expected returnRel error", sql)
		}
	}
	si := sqlInterpFor()
	rel, outs, err := si.returnRel(mustSelect(t,
		"SELECT T9.c1 AS [key], T9.c2 AS [val] FROM (SELECT c1, c2 FROM [tempdb].[TEMP_ID_1]) AS T9"))
	if err != nil {
		t.Fatalf("clean returnRel: %v", err)
	}
	if len(outs) != 2 || outs[0].name != "key" || outs[0].id != 1 {
		t.Fatalf("outs = %+v", outs)
	}
	if len(rel.cols) != 2 {
		t.Fatalf("rel cols = %+v", rel.cols)
	}
}

func TestExprHelpersSQLSide(t *testing.T) {
	si := sqlInterpFor()
	// Build a scope over the temp's columns.
	bf, err := si.bindRef(&sqlparser.TableName{Name: "TEMP_ID_1"})
	if err != nil {
		t.Fatal(err)
	}
	sc := &scope{items: bf.items}

	parseExpr := func(s string) sqlparser.Expr {
		sel := mustSelect(t, "SELECT c1 FROM [tempdb].[TEMP_ID_1] WHERE "+s)
		return sel.Where
	}

	caseE := parseExpr("CASE WHEN c1 = 1 THEN c2 ELSE c3 END = c2")
	if k, err := si.exprType(caseE, sc); err != nil || k != types.KindBool {
		t.Errorf("case cmp type = %v, %v", k, err)
	}
	dateE := parseExpr("DATEADD(mm, 3, c1) = c2")
	if _, err := si.exprType(dateE, sc); err != nil {
		t.Errorf("dateadd: %v", err)
	}
	between := parseExpr("c1 BETWEEN 1 AND 2")
	if _, err := si.canonExpr(between, sc); err == nil {
		t.Error("BETWEEN must not canonicalize")
	}
	inSub := parseExpr("c1 IN (SELECT c2 FROM [tempdb].[TEMP_ID_1])")
	if _, err := si.canonExpr(inSub, sc); err == nil {
		t.Error("IN-subquery must not canonicalize")
	}
	neg := parseExpr("-c1 = c2")
	if got, err := si.canonExpr(neg, sc); err != nil || !strings.Contains(got, "(-c1)") {
		t.Errorf("neg canon = %q, %v", got, err)
	}
	cast := parseExpr("CAST(c1 AS FLOAT) = c2")
	if got, err := si.canonExpr(cast, sc); err != nil || !strings.Contains(got, "AS FLOAT") {
		t.Errorf("cast canon = %q, %v", got, err)
	}
	isNull := parseExpr("c1 IS NOT NULL")
	kills, err := si.killConjExpr(isNull, sc)
	if err != nil || len(kills) != 1 {
		t.Errorf("IS NOT NULL kills = %v, %v", kills, err)
	}
	inList := parseExpr("c1 IN (1, 2)")
	kills, err = si.killConjExpr(inList, sc)
	if err != nil || len(kills) != 1 {
		t.Errorf("IN-list kills = %v, %v", kills, err)
	}
	notNullable := parseExpr("COALESCE(c1) = 1")
	if _, err := si.exprType(notNullable, sc); err == nil {
		t.Error("unknown function must not type-check")
	}
}

func TestScopeResolve(t *testing.T) {
	si := sqlInterpFor()
	bf, err := si.bindRef(&sqlparser.TableName{Name: "TEMP_ID_1"})
	if err != nil {
		t.Fatal(err)
	}
	bf.items[0].alias = "T5"
	sc := &scope{items: bf.items}
	if c, _, _ := sc.resolve("T5", "c1"); c == nil {
		t.Error("qualified resolve failed")
	}
	if c, _, _ := sc.resolve("T9", "c1"); c != nil {
		t.Error("wrong qualifier must not resolve")
	}
	if c, _, _ := sc.resolve("", "C1"); c == nil {
		t.Error("resolve must be case-insensitive")
	}
	outer := &scope{parent: sc}
	if c, _, _ := outer.resolve("", "c1"); c == nil {
		t.Error("parent-scope resolve failed")
	}
}

func TestJoinDistAbs(t *testing.T) {
	hash1 := absDist{Kind: core.DistHash, Cols: algebra.NewColSet(1)}
	hash2 := absDist{Kind: core.DistHash, Cols: algebra.NewColSet(20)}
	repl := absDist{Kind: core.DistReplicated}
	single := absDist{Kind: core.DistSingle}
	on := &algebra.Binary{Op: sqlparser.OpEq, L: col(1, types.KindInt), R: col(20, types.KindInt)}

	if d, ok := joinDistAbs(algebra.JoinInner, on, single, single); !ok || d.Kind != core.DistSingle {
		t.Error("single x single")
	}
	if _, ok := joinDistAbs(algebra.JoinInner, on, single, repl); ok {
		t.Error("single x repl must be invalid")
	}
	if d, ok := joinDistAbs(algebra.JoinInner, on, repl, repl); !ok || d.Kind != core.DistReplicated {
		t.Error("repl x repl")
	}
	if _, ok := joinDistAbs(algebra.JoinFullOuter, on, hash1, repl); ok {
		t.Error("hash x repl full outer must be invalid")
	}
	if d, ok := joinDistAbs(algebra.JoinInner, on, hash1, repl); !ok || !d.Cols.Has(20) {
		t.Error("hash x repl inner must extend the class with the equated col")
	}
	if _, ok := joinDistAbs(algebra.JoinLeftOuter, on, repl, hash2); ok {
		t.Error("repl x hash left outer must be invalid")
	}
	if d, ok := joinDistAbs(algebra.JoinInner, on, hash1, hash2); !ok || !d.Cols.Has(1) || !d.Cols.Has(20) {
		t.Error("collocated hash x hash inner")
	}
	offOn := &algebra.Binary{Op: sqlparser.OpEq, L: col(2, types.KindInt), R: col(20, types.KindInt)}
	if _, ok := joinDistAbs(algebra.JoinInner, offOn, hash1, hash2); ok {
		t.Error("non-collocated hash x hash must be invalid")
	}
}

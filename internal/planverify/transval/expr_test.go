package transval

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// mixedTemp is a boundary with one column per kind, c2 nullable, so
// expression tests can reach every type/nullability branch.
func mixedTemp() *absRel {
	return &absRel{
		dist: absDist{Kind: core.DistHash, Cols: algebra.NewColSet(1)},
		cols: []absCol{
			{ID: 1, Type: types.KindInt, Origins: map[string]struct{}{"t.a": {}}},
			{ID: 2, Type: types.KindFloat, Nullable: true, Origins: map[string]struct{}{"t.b": {}}},
			{ID: 3, Type: types.KindString, Origins: map[string]struct{}{"t.c": {}}},
			{ID: 4, Type: types.KindDate, Origins: map[string]struct{}{"t.d": {}}},
		},
	}
}

// exprScope parses a WHERE expression in the context of the mixed temp
// and hands back the interpreter, scope, and expression tree.
func exprScope(t *testing.T, whereSQL string) (*sqlInterp, *scope, sqlparser.Expr) {
	t.Helper()
	si := &sqlInterp{
		shell:     fuzzShell(),
		temps:     map[string]*absRel{"TEMP_M": mixedTemp()},
		slotKinds: map[int]types.Kind{0: types.KindInt, 1: types.KindDate},
		acc:       newFragAcc(),
	}
	bf, err := si.bindRef(&sqlparser.TableName{Name: "TEMP_M"})
	if err != nil {
		t.Fatal(err)
	}
	sel := mustSelect(t, "SELECT c1 FROM [tempdb].[TEMP_M] WHERE "+whereSQL)
	return si, &scope{items: bf.items}, sel.Where
}

func TestExprTypeBranches(t *testing.T) {
	cases := []struct {
		where string
		want  types.Kind
	}{
		{"(c1 + 1) = 1", types.KindBool},
		{"c3 LIKE 'a%'", types.KindBool},
		{"NOT (c1 = 1)", types.KindBool},
		{"c1 IN (1, 2)", types.KindBool},
		{"c1 IS NULL", types.KindBool},
	}
	for _, c := range cases {
		si, sc, e := exprScope(t, c.where)
		if k, err := si.exprType(e, sc); err != nil || k != c.want {
			t.Errorf("%q type = %v, %v", c.where, k, err)
		}
	}

	// Value sub-expressions: arithmetic widening, division, NULL erasure,
	// params, CASE, CAST, functions.
	valueCases := []struct {
		where string // comparison whose left side is probed
		want  types.Kind
	}{
		{"(c1 + 1) = 1", types.KindInt},
		{"(c1 + c2) = 1", types.KindFloat},
		{"(c1 / c1) = 1", types.KindFloat},
		{"(NULL + c1) = 1", types.KindInt},
		{"(c1 * \x00?0\x00) = 1", types.KindInt},
		{"CASE WHEN c1 = 1 THEN c2 ELSE c2 END = 1", types.KindFloat},
		{"CASE WHEN c1 = 1 THEN NULL ELSE c3 END = 'x'", types.KindString},
		{"CAST(c1 AS FLOAT) = 1", types.KindFloat},
		{"DATEADD(dd, 1, c4) = c4", types.KindDate},
		{"YEAR(c4) = 1", types.KindInt},
		{"SUBSTRING(c3, 1, 2) = 'x'", types.KindString},
		{"-c2 = 1", types.KindFloat},
	}
	for _, c := range valueCases {
		si, sc, e := exprScope(t, c.where)
		bin, ok := e.(*sqlparser.BinExpr)
		if !ok {
			t.Fatalf("%q did not parse to a comparison", c.where)
		}
		if k, err := si.exprType(bin.L, sc); err != nil || k != c.want {
			t.Errorf("%q left type = %v, %v; want %v", c.where, k, err, c.want)
		}
	}
}

func TestExprNullableBranches(t *testing.T) {
	cases := []struct {
		where string
		want  bool
	}{
		{"c1 = 1", false},
		{"c2 = 1", true},
		{"(c1 + c2) = 1", true},
		{"NOT (c2 = 1)", true},
		{"-c2 = 1", true},
		{"c2 IS NULL", false},
		{"c3 LIKE 'a%'", false},
		{"c2 IN (1, 2)", true},
		{"c1 IN (1, 2)", false},
		{"YEAR(c4) = 1", false},
		{"DATEADD(dd, 1, c4) = c4", false},
		{"CASE WHEN c1 = 1 THEN c2 ELSE c1 END = 1", true},
		{"CASE WHEN c1 = 1 THEN c1 END = 1", true},
		{"CASE WHEN c1 = 1 THEN c1 ELSE c1 END = 1", false},
		{"CAST(c2 AS BIGINT) = 1", true},
		{"c1 = \x00?0\x00", false},
	}
	for _, c := range cases {
		si, sc, e := exprScope(t, c.where)
		probe := e
		// For comparisons, nullability of the whole 3VL expression is the
		// OR of its operands; probe the full conjunct.
		if got, err := si.exprNullable(probe, sc); err != nil || got != c.want {
			t.Errorf("%q nullable = %v, %v; want %v", c.where, got, err, c.want)
		}
	}
}

func TestKillDepsBranches(t *testing.T) {
	cases := []struct {
		where string
		kills int
	}{
		{"(c1 + c2) > 1", 2}, // arithmetic: both operands are deps
		{"-c1 > 1", 1},       // negation passes through
		{"CAST(c1 AS FLOAT) > 1", 1},
		{"YEAR(c4) > 1", 1},                             // function args
		{"(c1 = 1) = (c2 = 1)", 0},                      // nested comparisons yield no deps
		{"CASE WHEN c1 = 1 THEN c1 ELSE c1 END > 1", 0}, // CASE masks NULLs
	}
	for _, c := range cases {
		si, sc, e := exprScope(t, c.where)
		kills, err := si.killConjExpr(e, sc)
		if err != nil || len(kills) != c.kills {
			t.Errorf("%q kills = %d, %v; want %d", c.where, len(kills), err, c.kills)
		}
	}
}

func TestCanonExprBranches(t *testing.T) {
	cases := []struct {
		where string
		want  string
	}{
		{"NOT (c1 = 1)", "NOT ((1 = c1))"},
		{"c1 IS NOT NULL", "c1 IS NOT NULL"},
		{"c3 NOT LIKE 'a%'", "c3 NOT LIKE 'a%'"},
		{"c1 NOT IN (1, 2)", "c1 NOT IN (1, 2)"},
		{"c1 = \x00?0\x00", "(?0 = c1)"},
		{"YEAR(c4) = 1", "(1 = YEAR(c4))"},
		{"CASE WHEN c1 = 1 THEN c1 ELSE c1 END = 1", "(1 = CASE WHEN (1 = c1) THEN c1 ELSE c1 END)"},
		{"CAST(c1 AS DATE) = c4", "(CAST(c1 AS DATE) = c4)"},
		{"-c1 = 1", "((-c1) = 1)"},
	}
	for _, c := range cases {
		si, sc, e := exprScope(t, c.where)
		got, err := si.canonExpr(e, sc)
		if err != nil || got != c.want {
			t.Errorf("%q canon = %q, %v; want %q", c.where, got, err, c.want)
		}
	}

	// Aggregates inside predicates are generator-impossible: reject.
	si, sc, e := exprScope(t, "SUM(c1) > 1")
	if _, err := si.canonExpr(e, sc); err == nil {
		t.Error("aggregate in predicate must not canonicalize")
	}
}

func TestValueBearing(t *testing.T) {
	cases := []struct {
		where string
		want  bool
	}{
		{"1 = 0", false},
		{"c1 = 1", true},
		{"1 = \x00?0\x00", true},
		{"NOT (1 = 0)", false},
		{"YEAR('1994-01-01') = 1994", false},
		{"1 BETWEEN 0 AND c1", true},
	}
	for _, c := range cases {
		si, _, e := exprScope(t, c.where)
		if got := si.valueBearing(e); got != c.want {
			t.Errorf("%q valueBearing = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestAggItems(t *testing.T) {
	si := &sqlInterp{
		shell:     fuzzShell(),
		temps:     map[string]*absRel{"TEMP_M": mixedTemp()},
		slotKinds: map[int]types.Kind{},
		acc:       newFragAcc(),
	}
	rel, err := si.selectRel(mustSelect(t,
		"SELECT MIN(c1) AS c9, MAX(c2) AS c10, COUNT(c2) AS c11, COUNT(*) AS c12, SUM(c2) AS c13 FROM [tempdb].[TEMP_M]"),
		nil, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// Keyless aggregates: MIN/MAX/SUM nullable, COUNT never.
	for i, wantNullable := range []bool{true, true, false, false, true} {
		if rel.cols[i].Nullable != wantNullable {
			t.Errorf("col %d nullable = %v, want %v", i, rel.cols[i].Nullable, wantNullable)
		}
	}
	if rel.cols[0].Type != types.KindInt || rel.cols[1].Type != types.KindFloat {
		t.Errorf("agg types = %v, %v", rel.cols[0].Type, rel.cols[1].Type)
	}
	if rel.cols[2].Type != types.KindInt || rel.cols[3].Type != types.KindInt {
		t.Error("COUNT must be BIGINT")
	}

	// Keyed: MIN over a non-nullable column is non-nullable.
	rel, err = si.selectRel(mustSelect(t,
		"SELECT c1, MIN(c3) AS c9, SUM(c1) AS c10 FROM [tempdb].[TEMP_M] GROUP BY c1"),
		nil, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if rel.cols[1].Nullable || rel.cols[2].Nullable {
		t.Error("keyed aggregates over non-null args must be non-nullable")
	}

	// Aggregate arithmetic in a projected item (the AVG decomposition).
	rel, err = si.selectRel(mustSelect(t,
		"SELECT (SUM(c1) / COUNT(c1)) AS c9 FROM [tempdb].[TEMP_M]"),
		nil, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if rel.cols[0].Type != types.KindFloat {
		t.Errorf("avg decomposition type = %v", rel.cols[0].Type)
	}
}

func TestScalarHelpersMore(t *testing.T) {
	look := lookupOf(
		absCol{ID: 1, Type: types.KindInt, Origins: map[string]struct{}{"t.a": {}}},
		absCol{ID: 2, Type: types.KindFloat, Nullable: true, Origins: map[string]struct{}{"t.b": {}}},
	)
	c1, c2 := col(1, types.KindInt), col(2, types.KindFloat)
	lit := func(v types.Value) *algebra.Const { return &algebra.Const{Val: v} }

	add := &algebra.Binary{Op: sqlparser.OpAdd, L: c1, R: lit(types.NewInt(1))}
	if typeOfScalar(add, look) != types.KindInt {
		t.Error("int + int")
	}
	widen := &algebra.Binary{Op: sqlparser.OpAdd, L: c1, R: c2}
	if typeOfScalar(widen, look) != types.KindFloat {
		t.Error("int + float widens")
	}
	div := &algebra.Binary{Op: binOpDiv, L: c1, R: c1}
	if typeOfScalar(div, look) != types.KindFloat {
		t.Error("division is float")
	}
	nullL := &algebra.Binary{Op: sqlparser.OpAdd, L: lit(types.Null), R: c1}
	if typeOfScalar(nullL, look) != types.KindInt {
		t.Error("NULL operand defers to the other side")
	}
	not := &algebra.Not{E: &algebra.Binary{Op: sqlparser.OpEq, L: c2, R: lit(types.NewInt(1))}}
	if typeOfScalar(not, look) != types.KindBool {
		t.Error("NOT is bool")
	}
	if !nullableScalar(not, look) {
		t.Error("NOT over nullable comparison is nullable")
	}
	if nullableScalar(&algebra.IsNull{E: c2}, look) {
		t.Error("IS NULL is never nullable")
	}
	if !nullableScalar(&algebra.Like{E: &algebra.Cast{E: c2, To: types.KindString}, Pattern: "%"}, look) {
		t.Error("LIKE over nullable subject is nullable")
	}
	inl := &algebra.InList{E: c1, List: []algebra.Scalar{c2}}
	if !nullableScalar(inl, look) {
		t.Error("IN with nullable member is nullable")
	}
	if nullableScalar(&algebra.Const{Val: types.NewInt(1), Param: 2}, look) {
		t.Error("parameterized const never re-binds to NULL")
	}
	fn := &algebra.Func{Name: "YEAR", Args: []algebra.Scalar{c1}, Out: types.KindInt}
	if nullableScalar(fn, look) {
		t.Error("function over non-null args is non-null")
	}

	// canonScalar: Not, InList, Case with else, negated Like/IsNull.
	if got := canonScalar(not); !strings.HasPrefix(got, "NOT (") {
		t.Errorf("not canon = %s", got)
	}
	if got := canonScalar(inl); !strings.Contains(got, "IN (c2)") {
		t.Errorf("inlist canon = %s", got)
	}
	nin := &algebra.InList{E: c1, List: []algebra.Scalar{lit(types.NewInt(1))}, Negated: true}
	if got := canonScalar(nin); !strings.Contains(got, "NOT IN") {
		t.Errorf("not-in canon = %s", got)
	}
	caseE := &algebra.Case{Whens: []algebra.CaseWhen{
		{Cond: &algebra.IsNull{E: c2, Negated: true}, Then: c2}}, Else: lit(types.NewFloat(0))}
	got := canonScalar(caseE)
	if !strings.Contains(got, "WHEN c2 IS NOT NULL THEN c2 ELSE 0") {
		t.Errorf("case canon = %s", got)
	}
	nlike := &algebra.Like{E: c1, Pattern: "x", Negated: true}
	if got := canonScalar(nlike); !strings.Contains(got, "NOT LIKE 'x'") {
		t.Errorf("negated like canon = %s", got)
	}
	negRef := &algebra.Neg{E: c1}
	if got := canonScalar(negRef); got != "(-c1)" {
		t.Errorf("neg colref canon = %s", got)
	}

	// typeOfScalar CASE fallbacks.
	nullCase := &algebra.Case{Whens: []algebra.CaseWhen{{Cond: not, Then: lit(types.Null)}}, Else: c1}
	if typeOfScalar(nullCase, look) != types.KindInt {
		t.Error("CASE skips NULL arms to the else type")
	}
	bare := &algebra.Case{Whens: []algebra.CaseWhen{{Cond: not, Then: lit(types.Null)}}}
	if typeOfScalar(bare, look) != types.KindNull {
		t.Error("all-NULL CASE is NULL-typed")
	}

	// nullDeps pass-throughs.
	if nd := nullDeps(&algebra.Neg{E: c1}); !nd.Has(1) {
		t.Error("neg null deps")
	}
	if nd := nullDeps(&algebra.Cast{E: c1, To: types.KindFloat}); !nd.Has(1) {
		t.Error("cast null deps")
	}
	if nd := nullDeps(fn); !nd.Has(1) {
		t.Error("func null deps")
	}
	if nd := nullDeps(add); !nd.Has(1) {
		t.Error("arithmetic null deps")
	}
}

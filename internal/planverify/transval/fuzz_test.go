package transval

import (
	"sync"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
)

var (
	fuzzShellOnce sync.Once
	fuzzShellVal  *catalog.Shell
)

func fuzzShell() *catalog.Shell {
	fuzzShellOnce.Do(func() {
		s := catalog.NewShell(4)
		for _, tb := range tpch.Tables() {
			if err := s.AddTable(tb); err != nil {
				panic(err)
			}
		}
		fuzzShellVal = s
	})
	return fuzzShellVal
}

// fuzzTemp is a plausible temp-table boundary for steps that read
// [tempdb].[TEMP_ID_1]: a dozen hash-placed integer columns.
func fuzzTemp() *absRel {
	r := &absRel{dist: absDist{Kind: core.DistHash, Cols: algebra.NewColSet(1)}}
	for id := 1; id <= 12; id++ {
		r.cols = append(r.cols, absCol{
			ID:      algebra.ColumnID(id),
			Type:    types.KindInt,
			Origins: map[string]struct{}{"lineitem.l_orderkey": {}},
		})
	}
	return r
}

// FuzzDSQLReparse throws arbitrary SQL at the re-parse and abstract
// re-interpretation pipeline: whatever the input, binding must either
// succeed or fail with an error — never panic, never loop. Seeds are the
// real generator shapes (moves, temp reads, joins, aggregation, TOP,
// parameter markers, the dual-row WHERE 1 = 0 idiom).
func FuzzDSQLReparse(f *testing.F) {
	f.Add("SELECT T2.c1 AS c1, T2.c5 AS c5 FROM (SELECT T1.[c_custkey] AS c1, T1.[c_mktsegment] AS c5 FROM [dbo].[customer] AS T1) AS T2 WHERE (T2.c5 = 'BUILDING')")
	f.Add("SELECT c1, c5 FROM [tempdb].[TEMP_ID_1]")
	f.Add("SELECT T4.c1 AS c1, SUM(T4.c2) AS c9, COUNT(*) AS c10 FROM (SELECT c1, c2 FROM [tempdb].[TEMP_ID_1]) AS T4 GROUP BY T4.c1")
	f.Add("SELECT T9.c5 AS [name] FROM (SELECT TOP 10 T5.c1 AS c5 FROM (SELECT c1 FROM [tempdb].[TEMP_ID_1]) AS T5 ORDER BY T5.c1 DESC) AS T9")
	f.Add("SELECT T5.c1 AS c1, T6.c2 AS c2 FROM (SELECT c1 FROM [tempdb].[TEMP_ID_1]) AS T5 INNER JOIN (SELECT c2 FROM [tempdb].[TEMP_ID_1]) AS T6 ON (T5.c1 = T6.c2)")
	f.Add("SELECT T2.c1 AS c1 FROM (SELECT T1.[o_orderkey] AS c1 FROM [dbo].[orders] AS T1) AS T2 WHERE (T2.c1 = \x00?0\x00)")
	f.Add("SELECT CAST(NULL AS BIGINT) AS c3 WHERE 1 = 0")
	f.Add("SELECT 1 AS dummy")
	f.Add("SELECT T2.c1 AS c1 FROM (SELECT T1.[c_custkey] AS c1 FROM [dbo].[customer] AS T1) AS T2 WHERE EXISTS (SELECT T3.[o_custkey] AS c6 FROM [dbo].[orders] AS T3 WHERE (T3.[o_custkey] = T2.c1))")
	f.Add("SELECT DATEADD(mm, 3, T2.c10) AS c11, YEAR(T2.c10) AS c12, SUBSTRING(T2.c5, 1, 2) AS c13 FROM (SELECT T1.[o_orderdate] AS c10, T1.[o_orderpriority] AS c5 FROM [dbo].[orders] AS T1) AS T2")
	shell := fuzzShell()
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return
		}
		sel, ok := stmt.(*sqlparser.SelectStmt)
		if !ok {
			return
		}
		si := &sqlInterp{
			shell:     shell,
			temps:     map[string]*absRel{"TEMP_ID_1": fuzzTemp()},
			slotKinds: map[int]types.Kind{0: types.KindInt, 1: types.KindDate},
			acc:       newFragAcc(),
		}
		si.selectRel(sel, nil, false, false)
		si.acc = newFragAcc()
		si.returnRel(sel)
	})
}

package normalize

// Literal parameterization for the plan cache. Parameterize strips the
// constants out of a query at the lexer level — the same "forced
// parameterization" a production control node applies before probing its
// plan cache — yielding a canonical literal-free form (the cache key's
// shape component) plus the literal slot vector with raw byte spans, so a
// cached plan template can be re-bound to new constants by splicing
// replacement text back into the original query.
//
// Slots are deduplicated by value: every occurrence of the same (kind,
// value) literal shares one slot. This keeps the downstream pipeline's
// value-based deduplication (normalization merging duplicate predicates,
// the memo merging fingerprint-equal expressions, GROUP BY matching
// select items textually) consistent with re-binding — two constants the
// optimizer may treat as interchangeable are guaranteed to receive the
// same replacement value. The slot pattern is part of the canonical form,
// so `a = 1 AND b = 1` (slots 0,0) and `a = 1 AND b = 2` (slots 0,1)
// fingerprint differently and can never alias to each other's plan.
//
// Three classes of literal are deliberately NOT parameterized, because
// their value is structurally load-bearing rather than a runtime argument:
//
//   - the number after TOP/LIMIT: it compiles into the dsql.Plan's Top
//     field (an int64, not SQL text), which text-level re-binding cannot
//     reach;
//   - every literal inside a DATEADD(...) call: normalization
//     constant-folds DATEADD, so the literal never survives into the
//     generated DSQL and a placeholder there would vanish;
//   - every literal inside an ORDER BY clause: `ORDER BY 2` selects an
//     output column by ordinal, a property of the plan, not a value.
//
// Retained literals stay part of the canonical form, so queries differing
// in them get distinct fingerprints and can never share a plan.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// LitKind classifies a parameterized literal.
type LitKind uint8

const (
	// LitInt is an integer numeric literal.
	LitInt LitKind = iota
	// LitFloat is a decimal numeric literal.
	LitFloat
	// LitString is a single-quoted string literal (which the binder may
	// later coerce to a date).
	LitString
)

// String names the kind for signatures and error messages.
func (k LitKind) String() string {
	switch k {
	case LitInt:
		return "int"
	case LitFloat:
		return "float"
	default:
		return "string"
	}
}

// Span is one raw byte range a literal occupied in the source text
// (quotes included for strings).
type Span struct {
	Pos int
	End int
}

// Literal is one stripped constant slot: a typed value plus every byte
// span where it occurred. Occurrences of the same (kind, value) pair
// share a slot.
type Literal struct {
	Kind  LitKind
	Val   types.Value
	Spans []Span // in source order
}

// ParamQuery is the parameterized form of one query.
type ParamQuery struct {
	// SQL is the original text.
	SQL string
	// Canon is the canonical literal-free rendering: one line per token,
	// keywords/identifiers upper-cased, each stripped literal reduced to a
	// typed, slot-numbered placeholder. Queries with equal Canon parse to
	// the same shape with the same slot pattern.
	Canon string
	// Lits are the literal slots; slot i corresponds to placeholder
	// `? <kind> i` of Canon.
	Lits []Literal
}

// Parameterize lexes sql and strips its literals. It fails only when the
// lexer rejects the text or a numeric literal does not parse — cases in
// which the parser would reject the query too, so callers can simply fall
// back to a cold compile and surface that error.
func Parameterize(sql string) (*ParamQuery, error) {
	toks, err := sqlparser.Lex(sql)
	if err != nil {
		return nil, err
	}
	pq := &ParamQuery{SQL: sql}
	slotOf := make(map[string]int) // kind+value -> slot index
	var canon strings.Builder
	// retainAt stacks the minimum paren depth at which each enclosing
	// retain region (DATEADD argument list, ORDER BY clause) is live; a
	// region ends when a ')' drops the depth below its entry. Non-empty
	// means "inside one, retain".
	var retainAt []int
	parenDepth := 0
	prevUpper := "" // Upper of the previous identifier/punct token
	for _, t := range toks {
		switch t.Kind {
		case sqlparser.TokenEOF:
			// nothing
		case sqlparser.TokenIdent:
			if t.Upper == "BY" && prevUpper == "ORDER" {
				retainAt = append(retainAt, parenDepth)
			}
			canon.WriteString("I ")
			canon.WriteString(t.Upper)
			canon.WriteByte('\n')
			prevUpper = t.Upper
		case sqlparser.TokenPunct:
			switch t.Text {
			case "(":
				parenDepth++
				if prevUpper == "DATEADD" {
					// Live inside the argument list, i.e. at this depth.
					retainAt = append(retainAt, parenDepth)
				}
			case ")":
				parenDepth--
				for n := len(retainAt); n > 0 && retainAt[n-1] > parenDepth; n = len(retainAt) {
					retainAt = retainAt[:n-1]
				}
			}
			canon.WriteString("P ")
			canon.WriteString(t.Text)
			canon.WriteByte('\n')
			prevUpper = t.Text
		case sqlparser.TokenNumber, sqlparser.TokenString:
			retain := len(retainAt) > 0
			if t.Kind == sqlparser.TokenNumber && (prevUpper == "TOP" || prevUpper == "LIMIT") {
				retain = true
			}
			if retain {
				if t.Kind == sqlparser.TokenNumber {
					canon.WriteString("N ")
				} else {
					canon.WriteString("S ")
				}
				canon.WriteString(t.Text)
				canon.WriteByte('\n')
			} else {
				kind, val, err := literalOf(t)
				if err != nil {
					return nil, err
				}
				key := kind.String() + "\x00" + val.String()
				slot, ok := slotOf[key]
				if !ok {
					slot = len(pq.Lits)
					slotOf[key] = slot
					pq.Lits = append(pq.Lits, Literal{Kind: kind, Val: val})
				}
				pq.Lits[slot].Spans = append(pq.Lits[slot].Spans, Span{Pos: t.Pos, End: t.End})
				fmt.Fprintf(&canon, "? %s %d\n", kind, slot)
			}
			prevUpper = ""
		}
	}
	pq.Canon = canon.String()
	return pq, nil
}

// literalOf converts a lexed literal token to its typed value, mirroring
// exactly how the parser materializes it (numbers with a dot are floats,
// the rest integers).
func literalOf(t sqlparser.Token) (LitKind, types.Value, error) {
	if t.Kind == sqlparser.TokenString {
		return LitString, types.NewString(t.Text), nil
	}
	if strings.ContainsAny(t.Text, ".eE") {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return 0, types.Value{}, fmt.Errorf("normalize: invalid number %q: %v", t.Text, err)
		}
		return LitFloat, types.NewFloat(f), nil
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, types.Value{}, fmt.Errorf("normalize: invalid number %q: %v", t.Text, err)
	}
	return LitInt, types.NewInt(n), nil
}

// Fingerprint hashes the canonical shape together with an environment
// signature (optimizer options, topology — anything plan-affecting beyond
// the text). Literal kinds and the slot pattern are part of Canon, so
// "a > 1" and "a > 1.0" fingerprint differently, as do "a = 1 AND b = 1"
// and "a = 1 AND b = 2".
func (pq *ParamQuery) Fingerprint(env string) string {
	h := sha256.New()
	h.Write([]byte(pq.Canon))
	h.Write([]byte{0})
	h.Write([]byte(env))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// LitSig hashes the literal slot values themselves; two same-shape
// queries share it only when every constant matches. It keys the
// exact-match fallback for queries whose plans are value-dependent
// (constant folding consumed a literal) and guards re-binding against
// aliasing.
func (pq *ParamQuery) LitSig() string {
	h := sha256.New()
	for _, l := range pq.Lits {
		fmt.Fprintf(h, "%s=%s\x00", l.Kind, l.Val.String())
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ParamAt maps the source byte offset of each stripped literal token to
// its 0-based slot. The binder uses it to stamp slot provenance onto the
// constants it materializes, connecting the algebra tree back to the
// placeholder vector.
func (pq *ParamQuery) ParamAt() map[int]int {
	m := make(map[int]int, len(pq.Lits))
	for slot, l := range pq.Lits {
		for _, s := range l.Spans {
			m[s.Pos] = slot
		}
	}
	return m
}

// BindTexts renders each slot's value as a SQL literal, the texts to
// substitute into a cached plan template compiled from a same-shape
// query.
func (pq *ParamQuery) BindTexts() []string {
	out := make([]string, len(pq.Lits))
	for i, l := range pq.Lits {
		out[i] = l.Val.SQLLiteral()
	}
	return out
}

// Splice rebuilds the query text with texts[i] substituted at every
// occurrence of literal slot i. texts must have exactly one entry per
// slot.
func (pq *ParamQuery) Splice(texts []string) (string, error) {
	if len(texts) != len(pq.Lits) {
		return "", fmt.Errorf("normalize: splice got %d texts for %d literal slots", len(texts), len(pq.Lits))
	}
	type occ struct {
		span Span
		slot int
	}
	var occs []occ
	for slot, l := range pq.Lits {
		for _, s := range l.Spans {
			occs = append(occs, occ{span: s, slot: slot})
		}
	}
	sort.Slice(occs, func(i, j int) bool { return occs[i].span.Pos < occs[j].span.Pos })
	var b strings.Builder
	prev := 0
	for _, o := range occs {
		b.WriteString(pq.SQL[prev:o.span.Pos])
		b.WriteString(texts[o.slot])
		prev = o.span.End
	}
	b.WriteString(pq.SQL[prev:])
	return b.String(), nil
}

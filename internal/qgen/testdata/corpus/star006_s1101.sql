SELECT g0, COUNT(*) AS cnt, SUM(v3) AS sv
FROM st00, st01, st02, st03, st04, st05
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND v0 <= 630
  AND v1 <= 211
  AND v2 <= 801
  AND v4 <= 220
  AND v5 <= 438
GROUP BY g0

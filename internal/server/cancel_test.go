package server

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pdwqo"
)

// cancelAction is one way a query can be torn down mid-flight.
type cancelAction string

const (
	actClientCancel cancelAction = "client-cancel"
	actConnDrop     cancelAction = "conn-drop"
	actShutdown     cancelAction = "shutdown"
)

// TestCancellationMatrix runs every teardown action at every query
// phase: the client sends Cancel, the connection drops, or the server
// shuts down while a query is queued, compiling, executing, or
// streaming. In every cell the server must answer promptly with the
// right typed error (when the connection still exists to answer on),
// release the admission slot, leave no temp tables, and strand no
// goroutines.
func TestCancellationMatrix(t *testing.T) {
	phases := []Phase{PhaseQueued, PhaseCompiling, PhaseExecuting, PhaseStreaming}
	actions := []cancelAction{actClientCancel, actConnDrop, actShutdown}
	for _, ph := range phases {
		for _, act := range actions {
			t.Run(fmt.Sprintf("%s/%s", ph, act), func(t *testing.T) {
				runCancelCase(t, ph, act)
			})
		}
	}
}

// rawSession is a frame-level client for tests that need to control
// exact wire timing (the high-level Client hides when Cancel is sent).
type rawSession struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	r := &rawSession{t: t, conn: conn}
	t.Cleanup(func() { conn.Close() })
	r.send(OpHello, helloPayload(Magic, Version))
	if op, _, err := ReadFrame(conn); err != nil || op != OpHelloAck {
		t.Fatalf("handshake: op=%v err=%v", op, err)
	}
	return r
}

func (r *rawSession) send(op Op, payload []byte) {
	r.t.Helper()
	if err := WriteFrame(r.conn, op, payload); err != nil {
		r.t.Fatalf("send %s: %v", op, err)
	}
}

// readToTerminal reads result frames until Done or Error, returning the
// terminal op and (for errors) the decoded code.
func (r *rawSession) readToTerminal() (Op, Code, error) {
	for {
		op, p, err := ReadFrame(r.conn)
		if err != nil {
			return 0, 0, err
		}
		switch op {
		case OpRowHeader, OpRowBatch:
		case OpDone:
			return OpDone, 0, nil
		case OpError:
			return OpError, CodeOf(decodeError(p)), nil
		default:
			return op, 0, fmt.Errorf("unexpected %s frame", op)
		}
	}
}

func runCancelCase(t *testing.T, target Phase, act cancelAction) {
	db := sharedDB(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{
		MaxConcurrent: 2,
		MaxQueue:      4,
		BatchRows:     8, // small batches so streaming has many cancel points
		PhaseHook: func(ph Phase, _ string) {
			if ph == target {
				once.Do(func() {
					entered <- struct{}{}
					<-release
				})
			}
		},
	}
	srv := New(db, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	baseline := runtime.NumGoroutine()

	// A query with a non-trivial result so streaming has work to cancel.
	const sql = "SELECT o_orderkey FROM orders ORDER BY o_orderkey"
	r := dialRaw(t, addr.String())
	r.send(OpQuery, queryPayload(sql))
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("query never reached the target phase")
	}

	switch act {
	case actClientCancel:
		r.send(OpCancel, nil)
		// Give the frame time to cross the loopback into the session's
		// frame channel before the query is allowed to proceed.
		time.Sleep(50 * time.Millisecond)
		close(release)
		op, code, err := r.readToTerminal()
		if err != nil {
			t.Fatalf("reading cancel response: %v", err)
		}
		if op != OpError || code != CodeCancelled {
			t.Fatalf("phase %s: terminal = %s/%s, want Error/cancelled", target, op, code)
		}
		// The session survives a cancelled query.
		r.send(OpQuery, queryPayload("SELECT r_name FROM region ORDER BY r_name"))
		if op, code, err := r.readToTerminal(); err != nil || op != OpDone {
			t.Fatalf("session unusable after cancel: op=%s code=%s err=%v", op, code, err)
		}
		r.send(OpBye, nil)

	case actConnDrop:
		r.conn.Close()
		close(release)

	case actShutdown:
		shutdownDone := make(chan struct{})
		go func() {
			srv.Shutdown()
			close(shutdownDone)
		}()
		// Shutdown blocks on the session, which is blocked on the hook;
		// release it so the teardown can complete.
		time.Sleep(50 * time.Millisecond)
		close(release)
		op, code, err := r.readToTerminal()
		// The shutdown answer races the connection close; an EOF/reset is
		// acceptable, but any frame that does arrive must be the typed
		// shutdown error.
		if err == nil && (op != OpError || code != CodeShutdown) {
			t.Fatalf("phase %s: terminal = %s/%s, want Error/shutdown", target, op, code)
		}
		select {
		case <-shutdownDone:
		case <-time.After(30 * time.Second):
			t.Fatal("shutdown hung")
		}
	}

	// Whatever the action, the admission slot must come back, no temp or
	// staging table may survive, and no session goroutine may linger.
	waitAdmissionDrained(t, srv)
	if leaks := leakedServerTables(db); len(leaks) > 0 {
		t.Fatalf("phase %s/%s leaked tables: %v", target, act, leaks)
	}
	if act != actShutdown {
		srv.Shutdown()
	}
	assertNoGoroutineGrowth(t, baseline)
}

func waitAdmissionDrained(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := srv.Stats().Admission
		if st.Running == 0 && st.Waiting == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// leakedServerTables scans every node for temp or staging tables; after
// any query teardown there must be none.
func leakedServerTables(db *pdwqo.DB) []string {
	a := db.Appliance()
	var leaks []string
	check := func(nodeID int, names []string) {
		for _, n := range names {
			if strings.HasPrefix(n, "TEMP") || strings.Contains(n, "__stage") {
				leaks = append(leaks, fmt.Sprintf("node %d: %s", nodeID, n))
			}
		}
	}
	check(a.Control.ID, a.Control.DB.Names())
	for _, n := range a.Compute {
		check(n.ID, n.DB.Names())
	}
	return leaks
}

package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeRecording(t *testing.T) {
	tr := New()
	if !tr.Enabled() {
		t.Fatal("New tracer should be enabled")
	}
	root := tr.Begin("optimize")
	child := tr.BeginUnder(root.ID(), "parse")
	child.Int("tokens", 42)
	child.Str("sql", "SELECT 1")
	child.End()
	tr.Event(root.ID(), "prune")
	step := tr.BeginUnder(root.ID(), "step")
	step.SetStep(StepStats{Step: 3, IsMove: true, Move: "SHUFFLE", Rows: 10, Bytes: 100, Attempts: 2})
	step.SetErr(errors.New("boom"))
	step.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "optimize" || spans[0].Parent != 0 {
		t.Errorf("root span wrong: %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("parse should parent under optimize: %+v", spans[1])
	}
	if len(spans[1].Attrs) != 2 || spans[1].Attrs[0].Val != 42 || spans[1].Attrs[1].Str != "SELECT 1" {
		t.Errorf("attrs wrong: %+v", spans[1].Attrs)
	}
	if spans[2].Name != "prune" || spans[2].Dur != 0 {
		t.Errorf("event wrong: %+v", spans[2])
	}
	if spans[3].Step == nil || spans[3].Step.Bytes != 100 || spans[3].Step.Attempts != 2 {
		t.Errorf("step payload wrong: %+v", spans[3].Step)
	}
	if spans[3].Err != "boom" {
		t.Errorf("err not recorded: %q", spans[3].Err)
	}
	if spans[0].Dur <= 0 || spans[1].Dur <= 0 {
		t.Errorf("ended spans should have durations: %v %v", spans[0].Dur, spans[1].Dur)
	}

	steps := tr.StepSpans()
	if len(steps) != 1 || steps[0].Step.Step != 3 {
		t.Errorf("StepSpans wrong: %+v", steps)
	}
}

func TestSpansDeepCopy(t *testing.T) {
	tr := New()
	sp := tr.Begin("a")
	sp.Int("k", 1)
	sp.SetStep(StepStats{Rows: 5})
	sp.End()

	got := tr.Spans()
	got[0].Attrs[0].Val = 99
	got[0].Step.Rows = 99
	again := tr.Spans()
	if again[0].Attrs[0].Val != 1 || again[0].Step.Rows != 5 {
		t.Error("Spans must return copies, not aliases into the tracer")
	}
}

func TestDisabledTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer must be disabled")
	}
	sp := tr.Begin("x")
	sp2 := tr.BeginUnder(7, "y")
	tr.Event(0, "e")
	sp.Int("k", 1)
	sp.Str("k", "v")
	sp.SetStep(StepStats{})
	sp.SetErr(errors.New("x"))
	sp.End()
	sp2.End()
	if sp.ID() != 0 || sp2.ID() != 0 {
		t.Error("disabled spans must have ID 0")
	}
	if tr.Spans() != nil || tr.StepSpans() != nil {
		t.Error("disabled tracer must report no spans")
	}
	if tr.Text() != "" {
		t.Error("disabled tracer must render empty text")
	}
	if b, err := tr.JSON(); err != nil || string(b) != "null" {
		t.Errorf("disabled tracer JSON = %q, %v", b, err)
	}
	if tr.Counters() != nil {
		t.Error("disabled tracer must have nil counters")
	}
	// Registry methods on the nil registry are also nil-safe.
	tr.Counters().Add("n", 1)
	tr.Counters().Set("n", 1)
	if tr.Counters().Get("n") != 0 {
		t.Error("nil registry Get should be 0")
	}
	if tr.Counters().Snapshot() != nil || tr.Counters().Names() != nil {
		t.Error("nil registry should snapshot nil")
	}
	if tr.Counters().String() != "" {
		t.Error("nil registry should render empty")
	}
}

// TestDisabledTracerZeroAlloc locks down the hot-path contract: with
// tracing off, the span calls the engine makes per step cost zero
// allocations.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("step")
		sp.Int("id", 1)
		sp.SetStep(StepStats{Rows: 1, Bytes: 2})
		tr.Counters().Add("exec.steps", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f times per op, want 0", allocs)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("b", 2)
	r.Add("a", 1)
	r.Add("b", 3)
	r.Set("c", 7)
	if r.Get("b") != 5 || r.Get("a") != 1 || r.Get("c") != 7 {
		t.Errorf("counter values wrong: %v", r.Snapshot())
	}
	if r.Get("missing") != 0 {
		t.Error("missing counter should read 0")
	}
	if names := r.Names(); strings.Join(names, ",") != "a,b,c" {
		t.Errorf("Names not sorted: %v", names)
	}
	want := "a=1\nb=5\nc=7\n"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	snap := r.Snapshot()
	snap["a"] = 99
	if r.Get("a") != 1 {
		t.Error("Snapshot must copy")
	}
}

func TestTextRendering(t *testing.T) {
	tr := New()
	root := tr.Begin("execute")
	s0 := tr.BeginUnder(root.ID(), "step")
	s0.SetStep(StepStats{Step: 0, IsMove: true, Move: "SHUFFLE", Rows: 10, Bytes: 80, Attempts: 1, LocalOps: 4, LocalRows: 99})
	s0.End()
	s1 := tr.BeginUnder(root.ID(), "step")
	s1.Int("id", 1)
	s1.SetErr(errors.New("injected"))
	s1.End()
	root.End()
	tr.Counters().Add("exec.steps", 2)

	out := tr.Text()
	for _, want := range []string{
		"execute", "step=0 rows=10 bytes=80 attempts=1 move=SHUFFLE",
		"local_ops=4 local_rows=99",
		"id=1", `err="injected"`, "-- counters", "exec.steps=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Text missing %q:\n%s", want, out)
		}
	}
	// Children indent under their parent.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("child span not indented:\n%s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New()
	sp := tr.Begin("optimize")
	sp.Int("groups", 12)
	sp.End()
	tr.Counters().Add("optimize.options_considered", 240)

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters map[string]int64 `json:"counters"`
		Spans    []Span           `json:"spans"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if decoded.Counters["optimize.options_considered"] != 240 {
		t.Errorf("counters lost: %v", decoded.Counters)
	}
	if len(decoded.Spans) != 1 || decoded.Spans[0].Name != "optimize" {
		t.Errorf("spans lost: %+v", decoded.Spans)
	}
}

func TestAttrString(t *testing.T) {
	if got := (Attr{Key: "rows", Val: 7}).String(); got != "rows=7" {
		t.Errorf("int attr = %q", got)
	}
	if got := (Attr{Key: "sql", Str: "x", IsStr: true}).String(); got != `sql="x"` {
		t.Errorf("str attr = %q", got)
	}
}

func TestFmtDur(t *testing.T) {
	if fmtDur(0) != "-" {
		t.Error("zero duration should render as -")
	}
	if fmtDur(1500*time.Nanosecond) == "" {
		t.Error("nonzero duration should render")
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New()
	root := tr.Begin("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.BeginUnder(root.ID(), "group")
				sp.Int("worker", int64(i))
				tr.Counters().Add("groups", 1)
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 1+8*50 {
		t.Errorf("got %d spans, want %d", got, 1+8*50)
	}
	if tr.Counters().Get("groups") != 400 {
		t.Errorf("counter = %d, want 400", tr.Counters().Get("groups"))
	}
	_ = tr.Text() // render under no lock violations
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("step")
		sp.Int("id", int64(i))
		sp.SetStep(StepStats{Rows: 1})
		tr.Counters().Add("exec.steps", 1)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("step")
		sp.Int("id", int64(i))
		sp.End()
	}
}

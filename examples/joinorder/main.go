// Command joinorder demonstrates the paper's §3.2 argument: parallelizing
// the best serial plan is not enough. It optimizes the three-way
// customer⋈orders⋈lineitem join both ways — the full PDW search versus the
// serial-winner baseline — and compares movement costs and plan shapes.
// Orders and lineitem share their partitioning column (orderkey), so the
// full search can exploit the collocated join the serial order may hide.
package main

import (
	"fmt"
	"log"

	"pdwqo"
)

func main() {
	db, err := pdwqo.OpenTPCH(0.005, 8, 42)
	if err != nil {
		log.Fatal(err)
	}

	sql := `SELECT c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
	        FROM customer, orders, lineitem
	        WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
	        GROUP BY c_name`

	full, err := db.Optimize(sql, pdwqo.Options{Mode: pdwqo.ModeFull})
	if err != nil {
		log.Fatal(err)
	}
	base, err := db.Optimize(sql, pdwqo.Options{Mode: pdwqo.ModeSerialBaseline})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== full PDW search ===")
	fmt.Println(full.Explain())
	fmt.Println("=== parallelized best serial plan (baseline) ===")
	fmt.Println(base.Explain())

	fmt.Printf("modeled DMS cost: full=%.6g baseline=%.6g (ratio %.2fx)\n",
		full.Cost(), base.Cost(), safeRatio(base.Cost(), full.Cost()))

	// Execute both and compare wall clock on the simulated appliance.
	for name, plan := range map[string]*pdwqo.QueryPlan{"full": full, "baseline": base} {
		res, err := db.ExecutePlan(plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s moves=%v rows=%d\n", name, plan.Moves(), len(res.Rows))
	}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return a / b
}

package engine

import (
	"errors"
	"fmt"
)

// ErrorKind classifies why a DSQL step failed. It is the taxonomy the
// retry layer keys its decisions off: injected faults, corrupt deliveries
// and timeouts are transient (an idempotent step may be retried after
// cleaning up its partial temp table), while execution errors are
// deterministic — the same SQL over the same rows fails the same way, so
// retrying is pointless.
type ErrorKind uint8

// Step failure kinds.
const (
	// ErrKindExec is a node-local compilation or evaluation failure
	// (unknown table, type mismatch, division by zero, ...).
	ErrKindExec ErrorKind = iota
	// ErrKindInjected is a failure produced by the fault-injection plan.
	ErrKindInjected
	// ErrKindCorrupt is a DMS delivery whose payload failed verification;
	// the staged rows are discarded, never published.
	ErrKindCorrupt
	// ErrKindTimeout is a step that exceeded Appliance.StepTimeout.
	ErrKindTimeout
	// ErrKindCancelled is a caller-cancelled execution (context cancel).
	ErrKindCancelled
)

// String names the kind for error text and logs.
func (k ErrorKind) String() string {
	switch k {
	case ErrKindExec:
		return "exec"
	case ErrKindInjected:
		return "injected-fault"
	case ErrKindCorrupt:
		return "corrupt-delivery"
	case ErrKindTimeout:
		return "timeout"
	case ErrKindCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("ErrorKind(%d)", uint8(k))
	}
}

// Sentinel errors for errors.Is matching without reaching into the
// StepError struct.
var (
	// ErrFaultInjected matches StepErrors caused by an injected fault.
	ErrFaultInjected = errors.New("engine: injected fault")
	// ErrCorruptDelivery matches StepErrors from a corrupted DMS payload.
	ErrCorruptDelivery = errors.New("engine: corrupt delivery")
	// ErrStepTimeout matches StepErrors from a per-step timeout.
	ErrStepTimeout = errors.New("engine: step timeout")
)

// StepError is the typed failure of one DSQL step: which step, on which
// node (NoNode when the failure is not node-attributable), on which
// attempt (0 = first execution, n = nth retry), and why. It supports
// errors.Is against the sentinel errors above and errors.As against
// *StepError, and unwraps to the underlying cause.
type StepError struct {
	Step    int
	Node    int
	Attempt int
	Kind    ErrorKind
	Err     error
}

// NoNode marks a StepError not attributable to a single node.
const NoNode = -(1 << 29)

// Error renders the full failure context.
func (e *StepError) Error() string {
	where := ""
	if e.Node != NoNode {
		where = fmt.Sprintf(" node %d,", e.Node)
	}
	return fmt.Sprintf("engine: step %d (%s,%s attempt %d): %v",
		e.Step, e.Kind, where, e.Attempt, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (e *StepError) Unwrap() error { return e.Err }

// Is matches the kind-specific sentinel errors.
func (e *StepError) Is(target error) bool {
	switch target {
	case ErrFaultInjected:
		return e.Kind == ErrKindInjected
	case ErrCorruptDelivery:
		return e.Kind == ErrKindCorrupt
	case ErrStepTimeout:
		return e.Kind == ErrKindTimeout
	}
	return false
}

// Retryable reports whether the failure is transient: retrying an
// idempotent step may succeed. Exec errors are deterministic and
// cancellation is the caller's decision, so neither retries.
func (e *StepError) Retryable() bool {
	switch e.Kind {
	case ErrKindInjected, ErrKindCorrupt, ErrKindTimeout:
		return true
	}
	return false
}

// stepError builds a node-attributed StepError; the retry loop stamps the
// attempt number when the error surfaces.
func stepError(step, node int, kind ErrorKind, err error) *StepError {
	return &StepError{Step: step, Node: node, Kind: kind, Err: err}
}

package sentinelwrap_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/sentinelwrap"
)

func TestSentinelWrap(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), sentinelwrap.Analyzer)
}

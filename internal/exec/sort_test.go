package exec

import (
	"testing"

	"pdwqo/internal/types"
)

// rowsOf builds single-column rows from a value list.
func rowsOf(vals ...types.Value) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		out[i] = types.Row{v}
	}
	return out
}

func TestSortRowsNullPlacement(t *testing.T) {
	vals := func() []types.Row {
		return rowsOf(types.NewInt(2), types.Null, types.NewInt(1), types.Null, types.NewInt(3))
	}

	asc := vals()
	if err := SortRows(asc, []MergeKey{{Pos: 0}}); err != nil {
		t.Fatal(err)
	}
	// Ascending: NULLS FIRST, then values in order.
	for i, want := range []types.Value{types.Null, types.Null, types.NewInt(1), types.NewInt(2), types.NewInt(3)} {
		if got := asc[i][0]; got.IsNull() != want.IsNull() || (!want.IsNull() && got.Int() != want.Int()) {
			t.Fatalf("asc[%d] = %v, want %v", i, got, want)
		}
	}

	desc := vals()
	if err := SortRows(desc, []MergeKey{{Pos: 0, Desc: true}}); err != nil {
		t.Fatal(err)
	}
	// Descending negates the whole comparison: NULLS LAST.
	for i, want := range []types.Value{types.NewInt(3), types.NewInt(2), types.NewInt(1), types.Null, types.Null} {
		if got := desc[i][0]; got.IsNull() != want.IsNull() || (!want.IsNull() && got.Int() != want.Int()) {
			t.Fatalf("desc[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSortRowsStableTies(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(1), types.NewString("b")},
		{types.NewInt(0), types.NewString("c")},
		{types.NewInt(1), types.NewString("d")},
	}
	if err := SortRows(rows, []MergeKey{{Pos: 0}}); err != nil {
		t.Fatal(err)
	}
	got := ""
	for _, r := range rows {
		got += r[1].Str()
	}
	if got != "cabd" {
		t.Fatalf("stable tie order = %q, want cabd", got)
	}
}

func TestSortRowsIncomparable(t *testing.T) {
	rows := rowsOf(types.NewInt(1), types.NewString("x"))
	if err := SortRows(rows, []MergeKey{{Pos: 0}}); err == nil {
		t.Fatal("mixed INT/VARCHAR sort key must error, not panic")
	}
}

func TestCompareRowsChecked(t *testing.T) {
	a := types.Row{types.NewInt(1), types.Null}
	b := types.Row{types.NewInt(1), types.NewInt(5)}
	// Tie on key 0, NULL < 5 on key 1.
	c, err := CompareRowsChecked(a, b, []MergeKey{{Pos: 0}, {Pos: 1}})
	if err != nil || c >= 0 {
		t.Fatalf("NULL should sort before 5 ascending: c=%d err=%v", c, err)
	}
	c, err = CompareRowsChecked(a, b, []MergeKey{{Pos: 0}, {Pos: 1, Desc: true}})
	if err != nil || c <= 0 {
		t.Fatalf("NULL should sort after 5 descending: c=%d err=%v", c, err)
	}
	c, err = CompareRowsChecked(a, a, []MergeKey{{Pos: 0}, {Pos: 1}})
	if err != nil || c != 0 {
		t.Fatalf("row vs itself: c=%d err=%v", c, err)
	}
}

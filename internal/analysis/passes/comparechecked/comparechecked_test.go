package comparechecked_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/comparechecked"
)

func TestCompareChecked(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), comparechecked.Analyzer)
}

package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// RunTest type-checks the single package of .go files under dir,
// applies the analyzer, and compares its diagnostics against the
// `// want "regexp"` expectations embedded in the sources: every
// diagnostic must match a want on its line and every want must be
// matched. Testdata may import standard-library and module-internal
// packages; imports resolve through the module's build cache.
func RunTest(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	pkg, err := loadTestPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage([]*Analyzer{a}, pkg)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	matched := map[*want]bool{}
	for _, d := range diags {
		w := findWant(wants, d)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if matched[w] {
			t.Errorf("%s:%d: want %q matched twice", w.file, w.line, w.re)
		}
		matched[w] = true
	}
	for i := range wants {
		if !matched[&wants[i]] {
			t.Errorf("%s:%d: no diagnostic matched %q", wants[i].file, wants[i].line, wants[i].re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func findWant(wants []want, d Diagnostic) *want {
	for i := range wants {
		w := &wants[i]
		if w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

var wantQuoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts the want expectations from every comment.
func collectWants(pkg *Package) ([]want, error) {
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				for _, q := range wantQuoted.FindAllString(text, -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want literal %s", p.Filename, p.Line, q)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", p.Filename, p.Line, err)
					}
					out = append(out, want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// moduleExports caches one `go list -export -deps ./...` sweep of the
// enclosing module per test binary: the export files it reports
// resolve both standard-library and pdwqo-internal imports appearing
// in testdata packages.
var moduleExports = sync.OnceValues(func() (func(string) (io.ReadCloser, error), error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(root, []string{"./..."})
	if err != nil {
		return nil, err
	}
	return exportLookup(pkgs), nil
})

func moduleRoot() (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(stdout.String())
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// loadTestPackage parses and type-checks the package under dir.
func loadTestPackage(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", dir)
	}
	lookup, err := moduleExports()
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck testdata %s: %w", dir, err)
	}
	return &Package{PkgPath: tpkg.Path(), Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

package loadgen

import (
	"context"
	"runtime"
	"testing"
	"time"

	"pdwqo"
	"pdwqo/internal/server"
)

// TestSoak is the load/soak harness from the issue: a long mixed
// prepared/ad-hoc run against an in-process server, then a chaos arm with
// a seeded fault plan and retries, then a zero-goroutine-leak gate. The
// whole test is capped at 30s of driving time (split across the two
// arms); -short trims it to a few seconds for CI.
func TestSoak(t *testing.T) {
	total := 30 * time.Second
	if testing.Short() {
		total = 6 * time.Second
	}
	arm := total / 2

	db, err := pdwqo.OpenTPCH(0.001, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlanCache(1024)
	// Execution-level parallelism keeps yield points inside queries so
	// admitted workers genuinely interleave even on a one-CPU host.
	db.SetParallelism(2)
	before := runtime.NumGoroutine()

	srv := server.New(db, server.Config{MaxConcurrent: 4, MaxQueue: 256})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Clean arm: every query must succeed and the cache must be hot.
	rep, err := Run(context.Background(), Config{
		Addr:             addr.String(),
		Sessions:         24,
		Duration:         arm,
		PreparedFraction: 0.5,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean arm: %s", rep.String())
	if rep.DialFails != 0 {
		t.Fatalf("clean arm: %d dial failures", rep.DialFails)
	}
	if rep.Errors != 0 {
		t.Fatalf("clean arm: %d errors by code %v", rep.Errors, rep.ByCode)
	}
	if rep.Queries == 0 {
		t.Fatal("clean arm issued no queries")
	}
	if hr := rep.HitRate(); hr < 0.9 {
		t.Fatalf("clean arm cache hit rate %.2f, want >= 0.9 (%v)", hr, rep.ByStatus)
	}
	srv.Shutdown()

	// Chaos arm: a seeded random fault plan with retries on a fresh
	// server. Absorbed faults look like clean queries; surviving ones must
	// surface as typed execution errors that the session shrugs off —
	// never a protocol wedge or a dead connection.
	db.SetFaultPlan(pdwqo.RandomFaultPlan(424242, 8, 2))
	db.SetResilience(3, 0)
	chaosSrv := server.New(db, server.Config{MaxConcurrent: 4, MaxQueue: 256})
	chaosAddr, err := chaosSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	crep, err := Run(context.Background(), Config{
		Addr:             chaosAddr.String(),
		Sessions:         24,
		Duration:         arm,
		PreparedFraction: 0.5,
		Seed:             4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos arm: %s", crep.String())
	if crep.DialFails != 0 {
		t.Fatalf("chaos arm: %d dial failures", crep.DialFails)
	}
	if crep.Queries == 0 {
		t.Fatal("chaos arm issued no queries")
	}
	for code := range crep.ByCode {
		if code != server.CodeExec {
			t.Fatalf("chaos arm saw non-exec error code %s: %v", code, crep.ByCode)
		}
	}
	if crep.Errors > crep.Queries/2 {
		t.Fatalf("chaos arm mostly failed: %d/%d errors", crep.Errors, crep.Queries)
	}
	chaosSrv.Shutdown()
	db.SetFaultPlan(nil)
	db.SetResilience(0, 0)

	// Leak gate: both servers are down, so every session, worker, and
	// recvLoop goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after soak: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

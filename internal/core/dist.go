// Package core implements the PDW query optimizer (paper §3, Figure 4):
// it parses the serial MEMO exported from the SQL-Server-side optimizer,
// derives interesting properties (equijoin and group-by columns), runs a
// bottom-up enumeration that injects data-movement operations, prunes with
// the DMS-only cost model (best overall + best per interesting property),
// and extracts the cheapest distributed execution plan.
package core

import (
	"fmt"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/cost"
)

// DistKind classifies how an intermediate result is placed on the
// appliance.
type DistKind uint8

// Placement kinds.
const (
	// DistHash: rows are spread over compute nodes by a hash of the
	// column(s) in Distribution.Cols; an empty set means "distributed,
	// partitioning column unknown" (e.g. after projecting it away).
	DistHash DistKind = iota
	// DistReplicated: every compute node holds the full relation.
	DistReplicated
	// DistSingle: the whole relation sits on the control node.
	DistSingle
)

// Distribution is the physical placement property of an option. For
// DistHash, Cols is the equivalence class of output columns known equal to
// the partitioning value: a relation hashed on ps_partkey that also
// outputs p_partkey (joined by equality) is hashed "on both".
type Distribution struct {
	Kind DistKind
	Cols algebra.ColSet
}

// HashOn builds a hash distribution on the given columns.
func HashOn(cols ...algebra.ColumnID) Distribution {
	return Distribution{Kind: DistHash, Cols: algebra.NewColSet(cols...)}
}

// Replicated is the replicated placement.
func Replicated() Distribution { return Distribution{Kind: DistReplicated} }

// Single is the control-node placement.
func Single() Distribution { return Distribution{Kind: DistSingle} }

// String renders the placement for plan display.
func (d Distribution) String() string {
	switch d.Kind {
	case DistReplicated:
		return "replicated"
	case DistSingle:
		return "single-node"
	default:
		if len(d.Cols) == 0 {
			return "distributed(?)"
		}
		ids := d.Cols.Sorted()
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("c%d", id)
		}
		return "hash(" + strings.Join(parts, ",") + ")"
	}
}

// restrict drops hash columns no longer present in the output and applies
// pass-through renames (projection support).
func (d Distribution) restrict(out algebra.ColSet, rename map[algebra.ColumnID][]algebra.ColumnID) Distribution {
	if d.Kind != DistHash {
		return d
	}
	cols := algebra.NewColSet()
	for id := range d.Cols {
		if out.Has(id) {
			cols.Add(id)
		}
		for _, nid := range rename[id] {
			if out.Has(nid) {
				cols.Add(nid)
			}
		}
	}
	return Distribution{Kind: DistHash, Cols: cols}
}

// MoveSpec describes one data-movement operation in a plan.
type MoveSpec struct {
	Kind cost.MoveKind
	Col  algebra.ColumnID // hash column for Shuffle / Trim
}

// String renders the move for plan display.
func (m MoveSpec) String() string {
	if m.Kind == cost.Shuffle || m.Kind == cost.Trim {
		return fmt.Sprintf("%s(c%d)", m.Kind, m.Col)
	}
	return m.Kind.String()
}

// Option is one costed distributed implementation of a group (or of an
// internal construct such as a local aggregation): either a relational
// operator over child options, or a data movement over one input.
type Option struct {
	// Op is the relational payload; nil when Move is set.
	Op algebra.Operator
	// Move is the data movement; nil when Op is set.
	Move   *MoveSpec
	Inputs []*Option

	Dist    Distribution
	Rows    float64
	Width   float64
	OutCols []algebra.ColumnMeta

	// DMSCost is the cumulative data-movement cost (the paper's plan
	// cost); TieCost is a cumulative relational-work tiebreaker so equal-
	// movement plans pick the cheaper serial shape.
	DMSCost float64
	TieCost float64
}

// Cost returns the plan cost (DMS only, per §3.3).
func (o *Option) Cost() float64 { return o.DMSCost }

// Idempotent reports whether the DSQL step cut at this option can be
// re-executed after a failure without changing the query's result. Move
// options qualify: a DMS operation reads committed sources and
// materializes into a private temp table, so dropping the partial table
// and rerunning is safe (PDW treats step execution as restartable
// units). Relational segments that stream to the client cannot be
// replayed — rows may already have left the appliance.
func (o *Option) Idempotent() bool { return o.Move != nil }

// better reports whether a beats b under (DMS cost, tie cost).
func better(a, b *Option) bool {
	if a.DMSCost != b.DMSCost {
		return a.DMSCost < b.DMSCost
	}
	return a.TieCost < b.TieCost
}

// String renders the option subtree.
func (o *Option) String() string {
	var b strings.Builder
	o.format(&b, 0)
	return b.String()
}

func (o *Option) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if o.Move != nil {
		fmt.Fprintf(b, "%s", o.Move)
	} else {
		b.WriteString(o.Op.OpName())
		switch op := o.Op.(type) {
		case *algebra.Get:
			fmt.Fprintf(b, "(%s)", op.Table.Name)
		case *algebra.Join:
			if op.On != nil {
				fmt.Fprintf(b, " on %s", op.On.Fingerprint())
			}
		case *algebra.GroupBy:
			keys := make([]string, len(op.Keys))
			for i, k := range op.Keys {
				keys[i] = fmt.Sprintf("c%d", k)
			}
			fmt.Fprintf(b, " keys=[%s]", strings.Join(keys, ","))
		}
	}
	fmt.Fprintf(b, "  [%s rows=%.6g dms=%.6g]\n", o.Dist, o.Rows, o.DMSCost)
	for _, in := range o.Inputs {
		in.format(b, depth+1)
	}
}

// Visit walks the option tree pre-order.
func (o *Option) Visit(f func(*Option)) {
	f(o)
	for _, in := range o.Inputs {
		in.Visit(f)
	}
}

// CountMoves tallies data movement operations by kind.
func (o *Option) CountMoves() map[cost.MoveKind]int {
	out := map[cost.MoveKind]int{}
	o.Visit(func(n *Option) {
		if n.Move != nil {
			out[n.Move.Kind]++
		}
	})
	return out
}

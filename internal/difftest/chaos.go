package difftest

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"pdwqo"
)

// Chaos certifies the engine's robustness contract for one case: run it
// fault-free on the serial reference path, then again under a seeded
// random fault plan, and assert that
//
//   - when retries absorb every fault, the chaos result is byte-identical
//     to the fault-free reference (determinism under perturbation);
//   - when they don't, the failure is a clean *pdwqo.StepError — never a
//     panic;
//   - either way, no temp or staging table is left behind on any node.
//
// The appliance's fault plan, retry policy and parallelism are restored
// before returning, so a cached DB can be shared with other tests.
func Chaos(db *pdwqo.DB, c Case, par int, seed int64, maxRetries int) error {
	a := db.Appliance()
	prevBackoff := a.RetryBackoff
	defer func() {
		db.SetFaultPlan(nil)
		db.SetResilience(0, 0)
		a.RetryBackoff = prevBackoff
	}()

	// Fault-free serial reference.
	db.SetFaultPlan(nil)
	db.SetResilience(0, 0)
	db.SetParallelism(1)
	plan, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: 1})
	if err != nil {
		return fmt.Errorf("%s: optimize: %w", c.Name, err)
	}
	ref, err := db.ExecutePlan(plan)
	if err != nil {
		return fmt.Errorf("%s: fault-free reference execute: %w", c.Name, err)
	}

	// Chaos run: same plan, seeded faults, parallel fan-out, fast backoff
	// so retry storms don't dominate test wall clock.
	faults := pdwqo.RandomFaultPlan(seed, len(plan.DSQL.Steps), a.Shell.Topology.ComputeNodes)
	db.SetFaultPlan(faults)
	db.SetResilience(maxRetries, 0)
	db.SetParallelism(par)
	a.RetryBackoff = 50 * time.Microsecond

	res, err := runRecovered(db, plan)

	if leaks := leakedTables(db); len(leaks) > 0 {
		return fmt.Errorf("%s: leaked tables after chaos run (seed %d): %v", c.Name, seed, leaks)
	}

	if err != nil {
		var se *pdwqo.StepError
		if !errors.As(err, &se) {
			return fmt.Errorf("%s: chaos failure (seed %d) is not a typed StepError: %w", c.Name, seed, err)
		}
		return nil // clean typed failure is an accepted outcome
	}
	if derr := diffResults(c.Name, par, ref, res); derr != nil {
		return fmt.Errorf("chaos (seed %d, %d faults fired, retries %d): %w",
			seed, faults.Fired(), maxRetries, derr)
	}
	return nil
}

// runRecovered executes the plan, converting any panic into an error so
// the harness can report it as a contract violation instead of dying.
func runRecovered(db *pdwqo.DB, plan *pdwqo.QueryPlan) (res *pdwqo.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{fmt.Sprintf("panic under injected faults: %v", r)}
		}
	}()
	return db.ExecutePlan(plan)
}

// panicError deliberately does not unwrap to *StepError, so a recovered
// panic always fails the typed-error assertion.
type panicError struct{ msg string }

func (e panicError) Error() string { return e.msg }

// leakedTables scans every node for temp or staging tables; after any
// execution — successful, failed or retried — there must be none.
func leakedTables(db *pdwqo.DB) []string {
	a := db.Appliance()
	var leaks []string
	check := func(nodeID int, names []string) {
		for _, n := range names {
			if strings.HasPrefix(n, "TEMP") || strings.Contains(n, "__stage") {
				leaks = append(leaks, fmt.Sprintf("node %d: %s", nodeID, n))
			}
		}
	}
	check(a.Control.ID, a.Control.DB.Names())
	for _, n := range a.Compute {
		check(n.ID, n.DB.Names())
	}
	return leaks
}

package planverify

import (
	"math"

	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
)

// CheckPlan verifies distribution-property soundness over the winning
// plan tree. The compatibility rules are re-derived here from the
// paper's §2.4/§4 semantics rather than calling the enumerator's own
// joinDist/gbCompatible, so a bug in either implementation shows up as
// a disagreement.
func CheckPlan(p *core.Plan) []Violation {
	var out []Violation
	if p == nil || p.Root == nil {
		return []Violation{violation(CodeMalformedOption, "plan has no root option")}
	}
	if p.TotalCost < 0 || math.IsNaN(p.TotalCost) || p.ReturnCost < 0 || math.IsNaN(p.ReturnCost) {
		out = append(out, violation(CodeEstimateNegative,
			"plan costs total=%g return=%g", p.TotalCost, p.ReturnCost))
	}
	// Shared subplans alias the same *Option; verify each node once.
	seen := map[*core.Option]bool{}
	var walk func(o *core.Option)
	walk = func(o *core.Option) {
		if seen[o] {
			return
		}
		seen[o] = true
		out = append(out, checkOption(o)...)
		for _, in := range o.Inputs {
			walk(in)
		}
	}
	walk(p.Root)
	out = append(out, checkAggSplit(p)...)
	return out
}

// checkOption verifies one plan node against its children.
func checkOption(o *core.Option) []Violation {
	var out []Violation
	switch {
	case o.Op == nil && o.Move == nil:
		return []Violation{violation(CodeMalformedOption, "option with neither operator nor movement")}
	case o.Op != nil && o.Move != nil:
		return []Violation{violation(CodeMalformedOption,
			"option with both operator %s and movement %s", o.Op.OpName(), o.Move)}
	}

	out = append(out, checkEstimates(o)...)
	out = append(out, checkHashCols(o)...)

	if o.Move != nil {
		if len(o.Inputs) != 1 {
			return append(out, violation(CodeMalformedOption,
				"movement %s with %d inputs", o.Move, len(o.Inputs)))
		}
		out = append(out, checkMove(o)...)
		return out
	}

	switch op := o.Op.(type) {
	case *algebra.Join:
		if len(o.Inputs) != 2 {
			return append(out, violation(CodeMalformedOption,
				"join with %d inputs", len(o.Inputs)))
		}
		out = append(out, checkJoin(o, op)...)
	case *algebra.GroupBy:
		if len(o.Inputs) != 1 {
			return append(out, violation(CodeMalformedOption,
				"group-by with %d inputs", len(o.Inputs)))
		}
		out = append(out, checkGroupBy(o, op)...)
	case *algebra.UnionAll:
		if len(o.Inputs) != 2 {
			return append(out, violation(CodeMalformedOption,
				"union with %d inputs", len(o.Inputs)))
		}
		out = append(out, checkUnion(o)...)
	}
	return out
}

// checkEstimates rejects negative/NaN estimates and non-monotone costs:
// an option's cumulative movement cost can never undercut an input's.
func checkEstimates(o *core.Option) []Violation {
	var out []Violation
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) }
	if bad(o.Rows) || bad(o.Width) || bad(o.DMSCost) {
		out = append(out, violation(CodeEstimateNegative,
			"option %s rows=%g width=%g dms=%g", describe(o), o.Rows, o.Width, o.DMSCost))
	}
	for _, in := range o.Inputs {
		if o.DMSCost < in.DMSCost-1e-9 {
			out = append(out, violation(CodeEstimateNegative,
				"option %s cost %g below input cost %g", describe(o), o.DMSCost, in.DMSCost))
		}
	}
	return out
}

// checkHashCols requires a hash placement's partitioning-column
// equivalence class to be part of the node's output schema: a claimed
// partitioning column the node does not produce can never route rows.
func checkHashCols(o *core.Option) []Violation {
	if o.Dist.Kind != core.DistHash {
		return nil
	}
	outSet := outColSet(o)
	for _, c := range o.Dist.Cols.Sorted() {
		if !outSet.Has(c) {
			return []Violation{violation(CodeHashColsNotOutput,
				"option %s hashed on c%d which it does not output", describe(o), c)}
		}
	}
	return nil
}

// moveSourceKind is the placement each movement kind consumes, and
// moveDestKind the placement it promises (paper §3.3.2's operation
// table, re-stated independently of core.newMoveOption).
var moveSourceKind = map[cost.MoveKind]core.DistKind{
	cost.Shuffle:             core.DistHash,
	cost.Broadcast:           core.DistHash,
	cost.PartitionMove:       core.DistHash,
	cost.Trim:                core.DistReplicated,
	cost.ReplicatedBroadcast: core.DistReplicated,
	cost.RemoteCopySingle:    core.DistReplicated,
	cost.ControlNodeMove:     core.DistSingle,
}

var moveDestKind = map[cost.MoveKind]core.DistKind{
	cost.Shuffle:             core.DistHash,
	cost.Trim:                core.DistHash,
	cost.Broadcast:           core.DistReplicated,
	cost.ControlNodeMove:     core.DistReplicated,
	cost.ReplicatedBroadcast: core.DistReplicated,
	cost.PartitionMove:       core.DistSingle,
	cost.RemoteCopySingle:    core.DistSingle,
}

// checkMove verifies a movement consumes and produces the placements
// its kind defines.
func checkMove(o *core.Option) []Violation {
	var out []Violation
	in := o.Inputs[0]
	kind := o.Move.Kind
	wantSrc, ok := moveSourceKind[kind]
	if !ok {
		return []Violation{violation(CodeMalformedOption, "unknown movement kind %v", kind)}
	}
	if in.Dist.Kind != wantSrc {
		out = append(out, violation(CodeMoveSource,
			"%s over %s input (needs %s source)", o.Move, in.Dist, distKindName(wantSrc)))
	}
	if o.Dist.Kind != moveDestKind[kind] {
		out = append(out, violation(CodeMoveDistribution,
			"%s produced %s (kind promises %s)", o.Move, o.Dist, distKindName(moveDestKind[kind])))
	}
	if kind == cost.Shuffle || kind == cost.Trim {
		if !o.Dist.Cols.Has(o.Move.Col) {
			out = append(out, violation(CodeMoveDistribution,
				"%s output placement %s misses its routing column c%d", o.Move, o.Dist, o.Move.Col))
		}
	}
	return out
}

// checkJoin re-derives the §2.4 partition-compatibility rules.
func checkJoin(o *core.Option, op *algebra.Join) []Violation {
	lo, ro := o.Inputs[0], o.Inputs[1]
	lk, rk := lo.Dist.Kind, ro.Dist.Kind
	switch {
	case lk == core.DistSingle && rk == core.DistSingle:
		return nil
	case lk == core.DistSingle || rk == core.DistSingle:
		// One side on the control node, the other spread over compute
		// nodes: no node holds both operands.
		return []Violation{violation(CodeJoinPlacement,
			"join of %s against %s crosses the control-node boundary", lo.Dist, ro.Dist)}
	case lk == core.DistReplicated && rk == core.DistReplicated:
		return nil
	case lk == core.DistHash && rk == core.DistReplicated:
		// Right side fully present everywhere: sound unless the join
		// must null-extend the right side, which every node would do.
		if op.Kind == algebra.JoinFullOuter {
			return []Violation{violation(CodeJoinPlacement,
				"full outer join over a replicated right side duplicates null extensions")}
		}
		return nil
	case lk == core.DistReplicated && rk == core.DistHash:
		// A replicated left re-processes every left row per node: only
		// join kinds without preserved/filtered left semantics survive.
		if op.Kind != algebra.JoinInner && op.Kind != algebra.JoinCross {
			return []Violation{violation(CodeJoinPlacement,
				"%v join with replicated left over partitioned right duplicates left-side semantics", op.Kind)}
		}
		return nil
	default: // both hash-distributed
		if !equiPaired(op.On, lo.Dist.Cols, ro.Dist.Cols) {
			return []Violation{violation(CodeJoinNotCollocated,
				"hash-hash join of %s against %s with no pairing equijoin conjunct", lo.Dist, ro.Dist)}
		}
		return nil
	}
}

// equiPaired reports whether some equality conjunct equates a column of
// the left partitioning class with one of the right class — the
// condition under which matching rows are guaranteed to meet on one
// node.
func equiPaired(on algebra.Scalar, l, r algebra.ColSet) bool {
	for _, conj := range algebra.Conjuncts(on) {
		a, b, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		if (l.Has(a) && r.Has(b)) || (l.Has(b) && r.Has(a)) {
			return true
		}
	}
	return false
}

// checkGroupBy requires complete and finalizing aggregations to see
// every row of each group on one node; partial aggregations are correct
// anywhere by construction.
func checkGroupBy(o *core.Option, op *algebra.GroupBy) []Violation {
	if op.Phase == algebra.AggPartial {
		return nil
	}
	in := o.Inputs[0]
	switch in.Dist.Kind {
	case core.DistSingle, core.DistReplicated:
		return nil
	default:
		if len(op.Keys) == 0 {
			return []Violation{violation(CodeGroupByPlacement,
				"keyless %s aggregation over %s input", phaseName(op.Phase), in.Dist)}
		}
		keySet := algebra.NewColSet(op.Keys...)
		for c := range in.Dist.Cols {
			if keySet.Has(c) {
				return nil
			}
		}
		return []Violation{violation(CodeGroupByPlacement,
			"%s aggregation keyed on %v over input partitioned by %s", phaseName(op.Phase), op.Keys, in.Dist)}
	}
}

// checkUnion requires both branches to agree on placement so the union
// is a per-node concatenation.
func checkUnion(o *core.Option) []Violation {
	lo, ro := o.Inputs[0], o.Inputs[1]
	lk, rk := lo.Dist.Kind, ro.Dist.Kind
	if lk != rk {
		return []Violation{violation(CodeUnionPlacement,
			"union of %s against %s", lo.Dist, ro.Dist)}
	}
	return nil
}

func outColSet(o *core.Option) algebra.ColSet {
	s := algebra.NewColSet()
	for _, c := range o.OutCols {
		s.Add(c.ID)
	}
	return s
}

func describe(o *core.Option) string {
	if o.Move != nil {
		return o.Move.String()
	}
	if o.Op != nil {
		return o.Op.OpName()
	}
	return "<empty>"
}

func distKindName(k core.DistKind) string {
	switch k {
	case core.DistReplicated:
		return "replicated"
	case core.DistSingle:
		return "single-node"
	default:
		return "hash-distributed"
	}
}

func phaseName(p algebra.AggPhase) string {
	switch p {
	case algebra.AggPartial:
		return "partial"
	case algebra.AggFinal:
		return "final"
	default:
		return "complete"
	}
}
